//! The engine snapshot codec: the full prepared state of a
//! [`crate::RepairEngine`] as one versioned, checksummed binary blob.
//!
//! A snapshot captures everything the engine paid for at build time and
//! accumulated since — per-attribute dictionaries, columnar code arrays,
//! the FD set, the conflict graph with its difference sets, cumulative
//! stats, the suspended sweep checkpoint and any salvaged heuristic cache —
//! so a restored engine answers every query bit-identically to the original
//! **without rebuilding the conflict graph**
//! ([`crate::EngineStats::conflict_graph_builds`] is `0` after a restore:
//! the restored engine never built one).
//!
//! # Format grammar
//!
//! ```text
//! snapshot   := magic version section_count section*
//! magic      := "RTSNAP01"                      (8 bytes)
//! version    := u32                             (currently 1)
//! section    := tag:u32 len:u64 crc:u32 payload (len bytes)
//! ```
//!
//! All integers are little-endian; `crc` is the IEEE CRC-32 of the payload.
//! Floats travel as raw bit patterns and durations as nanoseconds, so a
//! round trip is exact. Truncated, corrupt or version-skewed input fails
//! with a typed [`EngineError::Snapshot`] — never a panic: every length is
//! bounds-checked against the remaining bytes before it allocates, and
//! every decoded index is validated against the structure it points into.

use crate::error::EngineError;
use crate::stats::EngineStats;
use rt_constraints::{AttrSet, ConflictEdge, ConflictGraph, Fd, FdSet};
use rt_core::heuristic::HeuristicConfig;
use rt_core::search::FdRepair;
use rt_core::{
    CacheEntryExport, HeuristicCache, Parallelism, RangedFdRepair, RepairProblem, RepairState,
    SearchAlgorithm, SearchConfig, SearchStats, SweepCheckpoint, SweepCheckpointParts, WeightKind,
};
use rt_relation::{AttrDict, AttrId, Code, Instance, Schema, Value, VarId};
use std::time::Duration;

/// Magic prefix of every engine snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"RTSNAP01";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 2;

// Section tags. CONFIG..STATS are required; SWEEP and WARM are present only
// when the engine holds the corresponding cache.
const SEC_CONFIG: u32 = 1;
const SEC_SCHEMA: u32 = 2;
const SEC_DICTS: u32 = 3;
const SEC_CODES: u32 = 4;
const SEC_FDS: u32 = 5;
const SEC_GRAPH: u32 = 6;
const SEC_STATS: u32 = 7;
const SEC_SWEEP: u32 = 8;
const SEC_WARM: u32 = 9;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), hand-rolled: the build environment is offline.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn put_duration(out: &mut Vec<u8>, d: Duration) {
    put_u64(out, d.as_nanos() as u64);
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(out, 0),
        Value::Int(i) => {
            put_u8(out, 1);
            put_i64(out, *i);
        }
        Value::Float(f) => {
            put_u8(out, 2);
            put_u64(out, f.bits());
        }
        Value::Str(s) => {
            put_u8(out, 3);
            put_str(out, s);
        }
        Value::Var(vid) => {
            put_u8(out, 4);
            put_u16(out, vid.attr);
            put_u32(out, vid.id);
        }
    }
}

fn put_state(out: &mut Vec<u8>, state: &RepairState) {
    put_usize(out, state.extensions().len());
    for ext in state.extensions() {
        put_u64(out, ext.bits());
    }
}

fn put_search_stats(out: &mut Vec<u8>, s: &SearchStats) {
    put_usize(out, s.states_expanded);
    put_usize(out, s.states_generated);
    put_usize(out, s.heuristic_nodes);
    put_usize(out, s.heuristic_cache_hits);
    put_usize(out, s.heuristic_cache_entries);
    put_usize(out, s.dominance_pruned);
    put_duration(out, s.elapsed);
    put_bool(out, s.truncated);
}

fn put_cache(out: &mut Vec<u8>, entries: &[CacheEntryExport], hits: usize, nodes_spent: usize) {
    put_usize(out, entries.len());
    for e in entries {
        put_usize(out, e.selection.len());
        for &s in &e.selection {
            put_u32(out, s);
        }
        put_usize(out, e.violation.len());
        for &v in &e.violation {
            put_u64(out, v);
        }
        put_usize(out, e.tau);
        put_bool(out, e.truncated);
        put_bool(out, e.skipped_any);
        put_usize(out, e.nodes);
        put_usize(out, e.pushes.len());
        for (adds, threshold) in &e.pushes {
            put_usize(out, adds.len());
            for a in adds {
                put_u64(out, a.bits());
            }
            put_usize(out, *threshold);
        }
    }
    put_usize(out, hits);
    put_usize(out, nodes_spent);
}

fn push_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    put_u32(out, tag);
    put_u64(out, payload.len() as u64);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

// ---------------------------------------------------------------------------
// Primitive reader
// ---------------------------------------------------------------------------

fn bad(msg: impl Into<String>) -> EngineError {
    EngineError::Snapshot(msg.into())
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], EngineError> {
        if self.remaining() < n {
            return Err(bad(format!(
                "truncated: needed {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, EngineError> {
        Ok(self.take(1)?[0])
    }

    fn bool_(&mut self) -> Result<bool, EngineError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(bad(format!("invalid boolean byte {b}"))),
        }
    }

    fn u16(&mut self) -> Result<u16, EngineError> {
        // rtlint: allow(D006) -- take(2) just returned exactly 2 bytes
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, EngineError> {
        // rtlint: allow(D006) -- take(4) just returned exactly 4 bytes
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, EngineError> {
        // rtlint: allow(D006) -- take(8) just returned exactly 8 bytes
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn usize_(&mut self) -> Result<usize, EngineError> {
        usize::try_from(self.u64()?).map_err(|_| bad("usize overflow"))
    }

    fn i64(&mut self) -> Result<i64, EngineError> {
        // rtlint: allow(D006) -- take(8) just returned exactly 8 bytes
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64_(&mut self) -> Result<f64, EngineError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an element count, bounds-checking it against the bytes that
    /// remain (each element occupies at least `min_elem` bytes) so corrupt
    /// counts cannot trigger huge allocations.
    fn count(&mut self, min_elem: usize) -> Result<usize, EngineError> {
        let n = self.usize_()?;
        if n.checked_mul(min_elem.max(1))
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(bad(format!(
                "count {n} exceeds the {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn str_(&mut self) -> Result<String, EngineError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("invalid UTF-8 in string"))
    }

    fn duration(&mut self) -> Result<Duration, EngineError> {
        Ok(Duration::from_nanos(self.u64()?))
    }

    fn value(&mut self) -> Result<Value, EngineError> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::float(f64::from_bits(self.u64()?))),
            3 => Ok(Value::Str(self.str_()?)),
            4 => {
                let attr = self.u16()?;
                let id = self.u32()?;
                Ok(Value::Var(VarId::new(attr, id)))
            }
            t => Err(bad(format!("unknown value tag {t}"))),
        }
    }

    fn state(&mut self, fd_count: usize) -> Result<RepairState, EngineError> {
        let n = self.count(8)?;
        if n != fd_count {
            return Err(bad(format!(
                "repair state has {n} extensions for {fd_count} FDs"
            )));
        }
        let mut exts = Vec::with_capacity(n);
        for _ in 0..n {
            exts.push(AttrSet::from_bits(self.u64()?));
        }
        Ok(RepairState::new(exts))
    }

    fn search_stats(&mut self) -> Result<SearchStats, EngineError> {
        Ok(SearchStats {
            states_expanded: self.usize_()?,
            states_generated: self.usize_()?,
            heuristic_nodes: self.usize_()?,
            heuristic_cache_hits: self.usize_()?,
            heuristic_cache_entries: self.usize_()?,
            dominance_pruned: self.usize_()?,
            elapsed: self.duration()?,
            truncated: self.bool_()?,
        })
    }

    fn cache(&mut self) -> Result<(Vec<CacheEntryExport>, usize, usize), EngineError> {
        let n = self.count(8)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let sel_n = self.count(4)?;
            let mut selection = Vec::with_capacity(sel_n);
            for _ in 0..sel_n {
                selection.push(self.u32()?);
            }
            let vio_n = self.count(8)?;
            let mut violation = Vec::with_capacity(vio_n);
            for _ in 0..vio_n {
                violation.push(self.u64()?);
            }
            let tau = self.usize_()?;
            let truncated = self.bool_()?;
            let skipped_any = self.bool_()?;
            let nodes = self.usize_()?;
            let push_n = self.count(8)?;
            let mut pushes = Vec::with_capacity(push_n);
            for _ in 0..push_n {
                let add_n = self.count(8)?;
                let mut adds = Vec::with_capacity(add_n);
                for _ in 0..add_n {
                    adds.push(AttrSet::from_bits(self.u64()?));
                }
                let threshold = self.usize_()?;
                pushes.push((adds, threshold));
            }
            entries.push(CacheEntryExport {
                selection,
                violation,
                tau,
                truncated,
                skipped_any,
                nodes,
                pushes,
            });
        }
        let hits = self.usize_()?;
        let nodes_spent = self.usize_()?;
        Ok((entries, hits, nodes_spent))
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn weight_tag(weight: WeightKind) -> u8 {
    match weight {
        WeightKind::AttrCount => 0,
        WeightKind::DistinctCount => 1,
        WeightKind::Entropy => 2,
    }
}

fn algorithm_tag(algorithm: SearchAlgorithm) -> u8 {
    match algorithm {
        SearchAlgorithm::AStar => 0,
        SearchAlgorithm::BestFirst => 1,
    }
}

/// Serializes an engine's full prepared state. `weight` must be the
/// engine's built-in weighting tag (the caller has already rejected
/// custom-weight engines with a typed error).
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode(
    problem: &RepairProblem,
    weight: WeightKind,
    search_config: &SearchConfig,
    algorithm: SearchAlgorithm,
    seed: u64,
    stats: &EngineStats,
    sweep: Option<SweepCheckpointParts>,
    warm: Option<(Vec<CacheEntryExport>, usize, usize)>,
) -> Vec<u8> {
    let instance = problem.instance();
    let schema = instance.schema();
    let arity = schema.arity();

    let mut config = Vec::new();
    put_u8(&mut config, weight_tag(weight));
    put_u8(&mut config, algorithm_tag(algorithm));
    put_u64(&mut config, seed);
    put_usize(&mut config, search_config.max_expansions);
    put_usize(&mut config, search_config.heuristic.max_diff_sets);
    put_usize(&mut config, search_config.heuristic.node_budget);
    match search_config.parallelism {
        Parallelism::Auto => {
            put_u8(&mut config, 0);
            put_u64(&mut config, 0);
        }
        Parallelism::Serial => {
            put_u8(&mut config, 1);
            put_u64(&mut config, 0);
        }
        Parallelism::Fixed(n) => {
            put_u8(&mut config, 2);
            put_usize(&mut config, n);
        }
    }
    put_bool(&mut config, search_config.heuristic_cache);
    put_bool(&mut config, search_config.dominance_pruning);
    put_bool(&mut config, search_config.timing);
    put_bool(&mut config, problem.has_partition_index());

    let mut schema_sec = Vec::new();
    put_str(&mut schema_sec, schema.name());
    put_usize(&mut schema_sec, arity);
    for i in 0..arity {
        put_str(
            &mut schema_sec,
            schema.attr_name(AttrId(i as u16)).unwrap_or("?"),
        );
    }

    let mut dicts = Vec::new();
    for i in 0..arity {
        let (consts, vars) = instance.dict(AttrId(i as u16)).export_parts();
        put_usize(&mut dicts, consts.len());
        for v in &consts {
            put_value(&mut dicts, v);
        }
        put_usize(&mut dicts, vars.len());
        for vid in &vars {
            put_u16(&mut dicts, vid.attr);
            put_u32(&mut dicts, vid.id);
        }
    }

    let mut codes = Vec::new();
    put_usize(&mut codes, instance.len());
    for i in 0..arity {
        for &c in instance.codes(AttrId(i as u16)) {
            put_u32(&mut codes, c);
        }
    }
    for &c in instance.var_counters() {
        put_u32(&mut codes, c);
    }

    let mut fds = Vec::new();
    put_usize(&mut fds, problem.sigma().len());
    for (_, fd) in problem.sigma().iter() {
        put_u64(&mut fds, fd.lhs.bits());
        put_u16(&mut fds, fd.rhs.0);
    }

    let graph = problem.conflict_graph();
    let mut graph_sec = Vec::new();
    put_usize(&mut graph_sec, graph.row_count());
    put_usize(&mut graph_sec, graph.edge_count());
    for e in graph.edges() {
        put_usize(&mut graph_sec, e.rows.0);
        put_usize(&mut graph_sec, e.rows.1);
        put_usize(&mut graph_sec, e.violated_fds.len());
        for &f in &e.violated_fds {
            put_usize(&mut graph_sec, f);
        }
        put_u64(&mut graph_sec, e.difference_set.bits());
    }

    let mut stats_sec = Vec::new();
    put_usize(&mut stats_sec, stats.conflict_graph_builds);
    put_duration(&mut stats_sec, stats.build_elapsed);
    put_usize(&mut stats_sec, stats.repair_queries);
    put_usize(&mut stats_sec, stats.sweeps_started);
    put_usize(&mut stats_sec, stats.points_materialized);
    put_usize(&mut stats_sec, stats.states_expanded);
    put_usize(&mut stats_sec, stats.states_generated);
    put_usize(&mut stats_sec, stats.heuristic_nodes);
    put_usize(&mut stats_sec, stats.heuristic_cache_hits);
    put_usize(&mut stats_sec, stats.heuristic_cache_entries);
    put_usize(&mut stats_sec, stats.dominance_pruned);
    put_duration(&mut stats_sec, stats.search_elapsed);
    put_bool(&mut stats_sec, stats.truncated);
    put_usize(&mut stats_sec, stats.mutation_batches);
    put_usize(&mut stats_sec, stats.edges_added);
    put_usize(&mut stats_sec, stats.edges_removed);
    put_usize(&mut stats_sec, stats.components_dirtied);
    put_usize(&mut stats_sec, stats.graph_rebuild_avoided);
    put_usize(&mut stats_sec, stats.sweep_cache_hits);
    put_usize(&mut stats_sec, stats.dict_entries);
    put_usize(&mut stats_sec, stats.shards);
    put_usize(&mut stats_sec, stats.shard_replans);

    let mut out = Vec::new();
    out.extend_from_slice(SNAPSHOT_MAGIC);
    put_u32(&mut out, SNAPSHOT_VERSION);
    let section_count = 7 + sweep.is_some() as u32 + warm.is_some() as u32;
    put_u32(&mut out, section_count);
    push_section(&mut out, SEC_CONFIG, &config);
    push_section(&mut out, SEC_SCHEMA, &schema_sec);
    push_section(&mut out, SEC_DICTS, &dicts);
    push_section(&mut out, SEC_CODES, &codes);
    push_section(&mut out, SEC_FDS, &fds);
    push_section(&mut out, SEC_GRAPH, &graph_sec);
    push_section(&mut out, SEC_STATS, &stats_sec);

    if let Some(parts) = sweep {
        let mut sec = Vec::new();
        put_usize(&mut sec, parts.open.len());
        for (state, priority, cost) in &parts.open {
            put_state(&mut sec, state);
            put_f64(&mut sec, *priority);
            put_f64(&mut sec, *cost);
        }
        put_i64(&mut sec, parts.tau);
        put_i64(&mut sec, parts.tau_low);
        put_usize(&mut sec, parts.tau_high);
        put_usize(&mut sec, parts.current_upper);
        put_search_stats(&mut sec, &parts.stats);
        put_bool(&mut sec, parts.exhausted);
        put_usize(&mut sec, parts.found.len());
        for ranged in &parts.found {
            put_state(&mut sec, &ranged.repair.state);
            put_usize(&mut sec, ranged.repair.fd_set.len());
            for (_, fd) in ranged.repair.fd_set.iter() {
                put_u64(&mut sec, fd.lhs.bits());
                put_u16(&mut sec, fd.rhs.0);
            }
            put_f64(&mut sec, ranged.repair.dist_c);
            put_usize(&mut sec, ranged.repair.delta_p);
            put_usize(&mut sec, ranged.repair.cover_rows.len());
            for &r in &ranged.repair.cover_rows {
                put_usize(&mut sec, r);
            }
            put_usize(&mut sec, ranged.tau_range.0);
            put_usize(&mut sec, ranged.tau_range.1);
        }
        put_cache(
            &mut sec,
            &parts.cache_entries,
            parts.cache_hits,
            parts.cache_nodes_spent,
        );
        push_section(&mut out, SEC_SWEEP, &sec);
    }

    if let Some((entries, hits, nodes_spent)) = warm {
        let mut sec = Vec::new();
        put_cache(&mut sec, &entries, hits, nodes_spent);
        push_section(&mut out, SEC_WARM, &sec);
    }

    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// The decoded engine state [`crate::RepairEngine::restore`] reassembles.
pub(crate) struct DecodedEngine {
    pub problem: RepairProblem,
    pub search_config: SearchConfig,
    pub algorithm: SearchAlgorithm,
    pub seed: u64,
    pub stats: EngineStats,
    pub sweep: Option<SweepCheckpoint>,
    pub warm: Option<HeuristicCache>,
}

fn read_fd(r: &mut Reader<'_>, arity: usize) -> Result<Fd, EngineError> {
    let lhs = AttrSet::from_bits(r.u64()?);
    let rhs = r.u16()?;
    let mask = AttrSet::all(arity);
    if rhs as usize >= arity {
        return Err(bad(format!("FD RHS {rhs} out of range for arity {arity}")));
    }
    if !lhs.is_subset_of(mask) {
        return Err(bad(format!(
            "FD LHS {:#x} has attributes outside arity {arity}",
            lhs.bits()
        )));
    }
    let rhs = AttrId(rhs);
    if lhs.contains(rhs) {
        return Err(bad("trivial FD in snapshot: RHS appears in LHS"));
    }
    Ok(Fd::new(lhs, rhs))
}

pub(crate) fn decode(bytes: &[u8]) -> Result<DecodedEngine, EngineError> {
    let mut top = Reader::new(bytes);
    let magic = top.take(8)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(bad("bad magic: not an engine snapshot"));
    }
    let version = top.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(bad(format!(
            "unsupported snapshot version {version} (expected {SNAPSHOT_VERSION})"
        )));
    }
    let section_count = top.u32()?;
    let mut sections: Vec<(u32, &[u8])> = Vec::new();
    for _ in 0..section_count {
        let tag = top.u32()?;
        let len = top.u64()?;
        let crc = top.u32()?;
        let len = usize::try_from(len).map_err(|_| bad("section length overflow"))?;
        let payload = top.take(len)?;
        if crc32(payload) != crc {
            return Err(bad(format!("section {tag}: CRC mismatch")));
        }
        if sections.iter().any(|(t, _)| *t == tag) {
            return Err(bad(format!("duplicate section {tag}")));
        }
        sections.push((tag, payload));
    }
    if !top.is_done() {
        return Err(bad(format!(
            "{} trailing bytes after the last section",
            top.remaining()
        )));
    }
    let section = |tag: u32, name: &str| -> Result<Reader<'_>, EngineError> {
        sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| Reader::new(p))
            .ok_or_else(|| bad(format!("missing {name} section")))
    };
    let optional = |tag: u32| -> Option<Reader<'_>> {
        sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| Reader::new(p))
    };
    for (tag, _) in &sections {
        if !(SEC_CONFIG..=SEC_WARM).contains(tag) {
            return Err(bad(format!("unknown section tag {tag}")));
        }
    }

    // CONFIG
    let mut r = section(SEC_CONFIG, "config")?;
    let weight = match r.u8()? {
        0 => WeightKind::AttrCount,
        1 => WeightKind::DistinctCount,
        2 => WeightKind::Entropy,
        t => return Err(bad(format!("unknown weight kind {t}"))),
    };
    let algorithm = match r.u8()? {
        0 => SearchAlgorithm::AStar,
        1 => SearchAlgorithm::BestFirst,
        t => return Err(bad(format!("unknown search algorithm {t}"))),
    };
    let seed = r.u64()?;
    let max_expansions = r.usize_()?;
    let max_diff_sets = r.usize_()?;
    let node_budget = r.usize_()?;
    let parallelism = match (r.u8()?, r.usize_()?) {
        (0, _) => Parallelism::Auto,
        (1, _) => Parallelism::Serial,
        (2, n) => Parallelism::Fixed(n),
        (t, _) => return Err(bad(format!("unknown parallelism tag {t}"))),
    };
    let heuristic_cache = r.bool_()?;
    let dominance_pruning = r.bool_()?;
    let timing = r.bool_()?;
    let has_partition_index = r.bool_()?;
    let search_config = SearchConfig {
        max_expansions,
        heuristic: HeuristicConfig {
            max_diff_sets,
            node_budget,
        },
        parallelism,
        heuristic_cache,
        dominance_pruning,
        timing,
    };

    // SCHEMA
    let mut r = section(SEC_SCHEMA, "schema")?;
    let relation = r.str_()?;
    let arity = r.count(1)?;
    let mut names = Vec::with_capacity(arity);
    for _ in 0..arity {
        names.push(r.str_()?);
    }
    let schema = Schema::new(relation, names).map_err(|e| bad(format!("bad schema: {e}")))?;
    if schema.arity() != arity {
        return Err(bad("schema arity drifted during rebuild"));
    }

    // DICTS
    let mut r = section(SEC_DICTS, "dictionaries")?;
    let mut dicts = Vec::with_capacity(arity);
    for attr in 0..arity {
        let const_n = r.count(1)?;
        let mut consts = Vec::with_capacity(const_n);
        for _ in 0..const_n {
            consts.push(r.value()?);
        }
        let var_n = r.count(6)?;
        let mut vars = Vec::with_capacity(var_n);
        for _ in 0..var_n {
            let a = r.u16()?;
            let id = r.u32()?;
            vars.push(VarId::new(a, id));
        }
        dicts.push(
            AttrDict::from_parts(consts, vars)
                .map_err(|e| bad(format!("bad dictionary for attribute {attr}: {e}")))?,
        );
    }

    // CODES
    let mut r = section(SEC_CODES, "codes")?;
    let rows = r.count(1)?;
    let mut codes: Vec<Vec<Code>> = Vec::with_capacity(arity);
    for _ in 0..arity {
        let mut col = Vec::with_capacity(rows);
        for _ in 0..rows {
            col.push(r.u32()?);
        }
        codes.push(col);
    }
    let mut var_counters = Vec::with_capacity(arity);
    for _ in 0..arity {
        var_counters.push(r.u32()?);
    }
    let instance = Instance::from_encoded_parts(schema, dicts, codes, var_counters)
        .map_err(|e| bad(format!("bad encoded instance: {e}")))?;

    // FDS
    let mut r = section(SEC_FDS, "FDs")?;
    let fd_n = r.count(10)?;
    let mut fd_vec = Vec::with_capacity(fd_n);
    for _ in 0..fd_n {
        fd_vec.push(read_fd(&mut r, arity)?);
    }
    let sigma = FdSet::from_fds(fd_vec);
    if sigma.is_empty() {
        return Err(bad("snapshot carries an empty FD set"));
    }

    // GRAPH
    let mut r = section(SEC_GRAPH, "conflict graph")?;
    let row_count = r.usize_()?;
    if row_count != instance.len() {
        return Err(bad(format!(
            "conflict graph row count {row_count} does not match the {} instance rows",
            instance.len()
        )));
    }
    let edge_n = r.count(32)?;
    let mask = AttrSet::all(arity);
    let mut edges = Vec::with_capacity(edge_n);
    for _ in 0..edge_n {
        let u = r.usize_()?;
        let v = r.usize_()?;
        let label_n = r.count(8)?;
        let mut violated_fds = Vec::with_capacity(label_n);
        for _ in 0..label_n {
            let f = r.usize_()?;
            if f >= sigma.len() {
                return Err(bad(format!("edge label {f} out of range")));
            }
            violated_fds.push(f);
        }
        let diff = AttrSet::from_bits(r.u64()?);
        if !diff.is_subset_of(mask) {
            return Err(bad("difference set has attributes outside the schema"));
        }
        edges.push(ConflictEdge {
            rows: (u, v),
            violated_fds,
            difference_set: diff,
        });
    }
    let conflict = ConflictGraph::from_parts(row_count, edges)
        .map_err(|e| bad(format!("bad conflict graph: {e}")))?;

    // STATS
    let mut r = section(SEC_STATS, "stats")?;
    let mut stats = EngineStats {
        conflict_graph_builds: r.usize_()?,
        build_elapsed: r.duration()?,
        repair_queries: r.usize_()?,
        sweeps_started: r.usize_()?,
        points_materialized: r.usize_()?,
        states_expanded: r.usize_()?,
        states_generated: r.usize_()?,
        heuristic_nodes: r.usize_()?,
        heuristic_cache_hits: r.usize_()?,
        heuristic_cache_entries: r.usize_()?,
        dominance_pruned: r.usize_()?,
        search_elapsed: r.duration()?,
        truncated: r.bool_()?,
        mutation_batches: r.usize_()?,
        edges_added: r.usize_()?,
        edges_removed: r.usize_()?,
        components_dirtied: r.usize_()?,
        graph_rebuild_avoided: r.usize_()?,
        sweep_cache_hits: r.usize_()?,
        dict_entries: r.usize_()?,
        shards: r.usize_()?,
        shard_replans: r.usize_()?,
    };
    // The restored engine never built a conflict graph — the headline
    // invariant of restore (ROADMAP item 3): warm state, zero builds.
    stats.conflict_graph_builds = 0;

    let problem =
        RepairProblem::from_restored(instance, sigma, conflict, weight, has_partition_index);

    // SWEEP (optional)
    let sweep = match optional(SEC_SWEEP) {
        None => None,
        Some(mut r) => {
            let fd_count = problem.fd_count();
            let open_n = r.count(8)?;
            let mut open = Vec::with_capacity(open_n);
            for _ in 0..open_n {
                let state = r.state(fd_count)?;
                let priority = r.f64_()?;
                let cost = r.f64_()?;
                open.push((state, priority, cost));
            }
            let tau = r.i64()?;
            let tau_low = r.i64()?;
            let tau_high = r.usize_()?;
            let current_upper = r.usize_()?;
            let stats = r.search_stats()?;
            let exhausted = r.bool_()?;
            let found_n = r.count(8)?;
            let mut found = Vec::with_capacity(found_n);
            for _ in 0..found_n {
                let state = r.state(fd_count)?;
                let set_n = r.count(10)?;
                if set_n != fd_count {
                    return Err(bad(format!(
                        "found repair has {set_n} FDs, expected {fd_count}"
                    )));
                }
                let mut fd_vec = Vec::with_capacity(set_n);
                for _ in 0..set_n {
                    fd_vec.push(read_fd(&mut r, arity)?);
                }
                let fd_set = FdSet::from_fds(fd_vec);
                let dist_c = r.f64_()?;
                let delta_p = r.usize_()?;
                let cover_n = r.count(8)?;
                let mut cover_rows = Vec::with_capacity(cover_n);
                for _ in 0..cover_n {
                    cover_rows.push(r.usize_()?);
                }
                let lo = r.usize_()?;
                let hi = r.usize_()?;
                found.push(RangedFdRepair {
                    repair: FdRepair {
                        state,
                        fd_set,
                        dist_c,
                        delta_p,
                        cover_rows,
                    },
                    tau_range: (lo, hi),
                });
            }
            let (cache_entries, cache_hits, cache_nodes_spent) = r.cache()?;
            if !r.is_done() {
                return Err(bad("trailing bytes in sweep section"));
            }
            Some(SweepCheckpoint::from_parts(SweepCheckpointParts {
                open,
                tau,
                tau_low,
                tau_high,
                current_upper,
                stats,
                exhausted,
                found,
                cache_entries,
                cache_hits,
                cache_nodes_spent,
            }))
        }
    };

    // WARM (optional)
    let warm = match optional(SEC_WARM) {
        None => None,
        Some(mut r) => {
            let (entries, hits, nodes_spent) = r.cache()?;
            if !r.is_done() {
                return Err(bad("trailing bytes in warm-cache section"));
            }
            Some(HeuristicCache::from_exported(entries, hits, nodes_spent))
        }
    };

    Ok(DecodedEngine {
        problem,
        search_config,
        algorithm,
        seed,
        stats,
        sweep,
        warm,
    })
}
