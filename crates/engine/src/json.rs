//! A minimal JSON reader.
//!
//! The writing half of the workspace's JSON story lives in `rt-bench`
//! (flat experiment rows); this is the *reading* half the engine-session
//! I/O needs — mutation logs (see [`crate::mutation_log`]) and the CI
//! bench baselines. Just enough JSON, hand-rolled because the build
//! environment is offline (no serde).

/// A parsed JSON value.
///
/// The reading half of this module: just enough JSON to read back the flat
/// reports the writer produces (bench baselines, mutation logs). Objects
/// keep their key order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields, if it is one.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Renders a value as compact single-line JSON.
///
/// The inverse of [`parse`] and the writer `rt-proto` frames ride on:
/// control characters (including newlines) are `\u`-escaped, so the output
/// never contains a raw line break — one rendered value is always one
/// line-delimited frame. Numbers print integrally when they are integral
/// (so `parse ∘ render` is the identity for every value `parse` can
/// produce, up to f64 precision).
pub fn render(value: &JsonValue) -> String {
    let mut out = String::new();
    render_into(value, &mut out);
    out
}

fn render_into(value: &JsonValue, out: &mut String) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 => {
            out.push_str(&format!("{}", *n as i64));
        }
        JsonValue::Num(n) => out.push_str(&n.to_string()),
        JsonValue::Str(s) => render_str(s, out),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        JsonValue::Obj(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_str(key, out);
                out.push(':');
                render_into(item, out);
            }
            out.push('}');
        }
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry a byte offset and a short message.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(JsonValue::Num),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    u32::from_str_radix(std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?, 16)
        .map_err(|_| "bad \\u escape".to_string())
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        // Standard serializers (ensure_ascii-style) encode
                        // non-BMP characters as UTF-16 surrogate pairs
                        // (U+1F600 arrives as `\\ud83d\\ude00`). Decode the
                        // pair; a lone or mismatched surrogate is a
                        // malformed document.
                        if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos + 1..*pos + 3) != Some(&b"\\u"[..]) {
                                return Err(format!(
                                    "unpaired UTF-16 high surrogate at byte {}",
                                    *pos
                                ));
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(format!(
                                    "invalid UTF-16 low surrogate at byte {}",
                                    *pos
                                ));
                            }
                            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            *pos += 6;
                        } else if (0xDC00..0xE000).contains(&code) {
                            return Err(format!("unpaired UTF-16 low surrogate at byte {}", *pos));
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                    }
                    other => return Err(format!("bad escape {other:?} at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (possibly multi-byte).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                // rtlint: allow(D006) -- the Some(_) arm guarantees at least one byte, so the str is non-empty
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_nesting_and_whitespace() {
        let v = parse(" { \"a\" : [ 1 , -2.5e1 , {\"b\": []} ] , \"c\": null } ").unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert!(arr[2].get("b").unwrap().as_array().unwrap().is_empty());
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
    }

    #[test]
    fn parser_reads_strings_escapes_and_numbers() {
        let v = parse("{\"s\": \"a\\\"b\\n\\u0041\", \"t\": true, \"n\": 3}").unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\nA"));
        assert_eq!(v.get("t"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("n").unwrap().as_str(), None);
    }

    #[test]
    fn parser_decodes_surrogate_pairs() {
        // U+1F600 as an ensure_ascii-style serializer writes it.
        let v = parse("{\"s\": \"\\ud83d\\ude00!\"}").unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("\u{1F600}!"));
        // Lone or mismatched surrogates are malformed, not U+FFFD.
        assert!(parse("\"\\ud83d\"").is_err());
        assert!(parse("\"\\ud83d\\u0041\"").is_err());
        assert!(parse("\"\\ude00\"").is_err());
    }

    #[test]
    fn render_round_trips_and_stays_on_one_line() {
        let doc = "{\"a\":[1,-2.5,{\"b\":[]},\"x\\ny\",null,true,false],\"c\":\"\\u0001\"}";
        let v = parse(doc).unwrap();
        let rendered = render(&v);
        assert_eq!(rendered, doc);
        assert!(!rendered.contains('\n'));
        assert_eq!(parse(&rendered).unwrap(), v);
        // Integral floats print integrally; fractional ones keep their dot.
        assert_eq!(render(&JsonValue::Num(3.0)), "3");
        assert_eq!(render(&JsonValue::Num(-0.5)), "-0.5");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }
}
