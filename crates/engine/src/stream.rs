//! Lazy, streaming access to the repair spectrum.

use crate::engine::RepairEngine;
use crate::error::EngineError;
use rt_core::{RangeSearch, SearchStats};

/// One point of the repair spectrum: a materialized repair together with
/// the inclusive `τ` interval for which it is *the* τ-constrained repair.
#[derive(Debug, Clone)]
pub struct RepairPoint {
    /// Inclusive `τ` interval this repair covers.
    pub tau_range: (usize, usize),
    /// The materialized joint repair `(Σ', I')`.
    pub repair: rt_core::Repair,
}

/// The fully collected output of a sweep: every distinct repair of the
/// range, ordered from largest to smallest `τ`, plus the statistics of the
/// single Range-Repair traversal that produced them.
#[derive(Debug, Clone)]
pub struct Spectrum {
    /// The repair points, largest `τ` first.
    pub points: Vec<RepairPoint>,
    /// Statistics of the underlying search pass.
    pub search_stats: SearchStats,
}

impl Spectrum {
    /// Number of distinct repairs in the spectrum.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the range contained no repair.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The materialized repairs, largest `τ` first.
    pub fn repairs(&self) -> impl Iterator<Item = &rt_core::Repair> {
        self.points.iter().map(|p| &p.repair)
    }

    /// Full bit-identity with another spectrum: same points, same
    /// intervals, same FD states and sets, same costs (compared as raw
    /// bits), same repaired instances and changed cells.
    ///
    /// This is the single predicate behind the workspace's
    /// incremental ≡ rebuild checks (`rtclean apply --verify`, the CI
    /// `bench_gate`); search statistics are deliberately excluded — two
    /// identical spectra may cost different amounts of work to produce
    /// (that difference is the point of the caches).
    pub fn bit_identical(&self, other: &Spectrum) -> bool {
        self.len() == other.len()
            && self.points.iter().zip(other.points.iter()).all(|(a, b)| {
                a.tau_range == b.tau_range
                    && a.repair.state == b.repair.state
                    && a.repair.delta_p == b.repair.delta_p
                    && a.repair.dist_c.to_bits() == b.repair.dist_c.to_bits()
                    && a.repair.modified_fds == b.repair.modified_fds
                    && a.repair.repaired_instance == b.repair.repaired_instance
                    && a.repair.changed_cells == b.repair.changed_cells
            })
    }
}

/// A lazy iterator over the repair spectrum, returned by
/// [`RepairEngine::sweep`].
///
/// Nothing is computed up front: each [`Iterator::next`] call resumes the
/// engine's Range-Repair traversal (Algorithm 6) until the next distinct FD
/// repair is found, materializes the corresponding data repair, and returns
/// it. The open list, vertex-cover work and heuristic estimates are shared
/// across adjacent `τ` values inside the one traversal, and the conflict
/// graph the engine built at construction time answers every violating
/// subgraph — the stream never rescans the data.
///
/// The stream yields `Err(EngineError::BudgetExhausted)` (once, then ends)
/// when the expansion cap stops the traversal before the range is
/// exhausted.
pub struct RepairStream<'e> {
    engine: &'e RepairEngine,
    /// `Some` until the stream is dropped; `Drop` suspends the traversal
    /// into the engine's sweep cache so a later sweep over the same range
    /// can resume instead of restarting.
    search: Option<RangeSearch<'e>>,
    /// Stats snapshot already folded into the engine totals (non-zero for a
    /// stream resumed from a checkpoint: its past work was published by the
    /// stream that suspended it).
    absorbed: SearchStats,
    /// The τ the sweep was asked about (for error reporting).
    tau_high: usize,
    finished: bool,
}

impl<'e> RepairStream<'e> {
    pub(crate) fn new(
        engine: &'e RepairEngine,
        search: RangeSearch<'e>,
        tau_high: usize,
        absorbed: SearchStats,
    ) -> Self {
        RepairStream {
            engine,
            search: Some(search),
            absorbed,
            tau_high,
            finished: false,
        }
    }

    fn search(&self) -> &RangeSearch<'e> {
        // rtlint: allow(D006) -- the Option is only taken in Drop; every method sees Some
        self.search.as_ref().expect("search present until drop")
    }

    /// Statistics of the underlying traversal so far (this traversal,
    /// including any resumed prefix; the engine's [`RepairEngine::stats`]
    /// aggregates across all queries).
    pub fn search_stats(&self) -> SearchStats {
        self.search().stats()
    }

    /// Drains the stream into a [`Spectrum`], propagating a truncation
    /// error if the expansion cap was hit.
    pub fn collect_spectrum(mut self) -> Result<Spectrum, EngineError> {
        let mut points = Vec::new();
        for point in &mut self {
            points.push(point?);
        }
        Ok(Spectrum {
            points,
            search_stats: self.search().stats(),
        })
    }

    /// Folds the not-yet-reported part of the search statistics into the
    /// engine's cumulative totals.
    fn publish_stats(&mut self) {
        let now = self.search().stats();
        let delta = SearchStats {
            states_expanded: now.states_expanded - self.absorbed.states_expanded,
            states_generated: now.states_generated - self.absorbed.states_generated,
            heuristic_nodes: now.heuristic_nodes - self.absorbed.heuristic_nodes,
            heuristic_cache_hits: now.heuristic_cache_hits - self.absorbed.heuristic_cache_hits,
            // A gauge, not a counter: pass the current cache size through
            // (the engine folds it in with `max`, not `+`).
            heuristic_cache_entries: now.heuristic_cache_entries,
            dominance_pruned: now.dominance_pruned - self.absorbed.dominance_pruned,
            elapsed: now.elapsed.saturating_sub(self.absorbed.elapsed),
            truncated: now.truncated,
        };
        self.absorbed = now;
        self.engine.absorb_search_stats(&delta);
    }
}

impl Iterator for RepairStream<'_> {
    type Item = Result<RepairPoint, EngineError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        let ranged = self
            .search
            .as_mut()
            // rtlint: allow(D006) -- the Option is only taken in Drop; every method sees Some
            .expect("search present until drop")
            .next_repair();
        match ranged {
            Some(ranged) => {
                let stats_snapshot = self.search().stats();
                let repair = self.engine.materialize(&ranged, stats_snapshot);
                self.publish_stats();
                self.engine.note_point_materialized();
                Some(Ok(RepairPoint {
                    tau_range: ranged.tau_range,
                    repair,
                }))
            }
            None => {
                self.finished = true;
                self.publish_stats();
                if self.search().stats().truncated {
                    // Report the (tightened) budget the traversal stalled
                    // at, not the range's upper bound: repairs above it
                    // were already yielded.
                    Some(Err(EngineError::BudgetExhausted {
                        tau: self.search().current_tau().unwrap_or(self.tau_high),
                        max_expansions: self.engine.search_config().max_expansions,
                    }))
                } else {
                    None
                }
            }
        }
    }
}

impl Drop for RepairStream<'_> {
    fn drop(&mut self) {
        if let Some(search) = self.search.take() {
            // Suspend whatever the traversal reached — a partial prefix or
            // the exhausted range — so the next sweep over this range can
            // replay / resume it. Mutations invalidate the checkpoint when
            // (and only when) they change FD-level search state.
            self.engine.stash_sweep(search.suspend());
        }
    }
}
