//! # rt-datagen
//!
//! Workload generation and evaluation metrics for the paper's experiments.
//!
//! The paper evaluates on the UCI Census-Income data set (300k tuples, 34
//! attributes), from which it mines FDs, perturbs data and FDs in a
//! controlled way, and measures how well the repairs recover the ground
//! truth. The data set itself is not redistributable here, so this crate
//! provides a *census-like synthetic generator* with the properties the
//! experiments actually rely on:
//!
//! * a clean instance `I_c` that exactly satisfies a set of planted FDs
//!   `Σ_c` with configurable LHS sizes and attribute cardinalities;
//! * the error-injection procedure of Section 8.1 (right-hand-side and
//!   left-hand-side violations) parameterized by a *data error rate*;
//! * FD perturbation (dropping LHS attributes) parameterized by an
//!   *FD error rate*;
//! * the quality metrics of Section 8.1: data/FD precision and recall,
//!   F-scores and the combined F-score.
//!
//! Everything is deterministic given a seed, so experiments and tests are
//! reproducible.

//!
//! ```
//! use rt_datagen::{generate_census_like, perturb, CensusLikeConfig, PerturbConfig};
//!
//! let (clean, fds) = generate_census_like(&CensusLikeConfig::single_fd(120, 8, 3));
//! assert!(fds.holds_on(&clean)); // planted FDs hold exactly
//!
//! let truth = perturb(
//!     &clean,
//!     &fds,
//!     &PerturbConfig { data_error_rate: 0.01, fd_error_rate: 0.0, ..Default::default() },
//! );
//! assert!(truth.error_count() > 0);
//! assert!(!fds.holds_on(&truth.dirty)); // every injected error violates an FD
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod metrics;
pub mod mutations;
pub mod perturb;

pub use generator::{generate_census_like, CensusLikeConfig, PlantedFd};
pub use metrics::{evaluate_repair, RepairQuality};
pub use mutations::{generate_mutation_stream, MutationStreamConfig};
pub use perturb::{perturb, GroundTruth, PerturbConfig};
