//! Seeded mutation-stream generation for incremental-engine benchmarks.
//!
//! The incremental mutation layer (`rt_core::mutation`, surfaced as the
//! engine's `MutationBatch`) needs realistic, *reproducible* workloads:
//! streams of inserts, deletes, cell updates and FD edits that sometimes
//! create conflicts (values drawn from the live column domains collide with
//! existing LHS classes) and sometimes do not (fresh values). Everything is
//! deterministic given a seed, so benchmark counters and the
//! incremental ≡ rebuild property tests are stable across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rt_constraints::{AttrSet, Fd, FdSet};
use rt_core::MutationOp;
use rt_relation::{AttrId, CellRef, Instance, Tuple, Value};

/// Shape of a generated mutation stream.
///
/// The per-kind weights need not sum to anything; each op kind is drawn
/// with probability proportional to its weight. Kinds whose preconditions
/// cannot be met at some point of the stream (deleting from an empty
/// instance, removing the last FD) fall back to an insert.
#[derive(Debug, Clone)]
pub struct MutationStreamConfig {
    /// Number of ops to generate.
    pub ops: usize,
    /// Relative weight of tuple-insert ops.
    pub insert_weight: u32,
    /// Relative weight of tuple-delete ops.
    pub delete_weight: u32,
    /// Relative weight of cell-update ops.
    pub update_weight: u32,
    /// Relative weight of FD edits (alternating add / remove).
    pub fd_edit_weight: u32,
    /// Maximum tuples per insert op (at least 1).
    pub max_insert_batch: usize,
    /// Maximum rows per delete op (at least 1).
    pub max_delete_batch: usize,
    /// Probability that a generated cell value is a *fresh* constant never
    /// seen in the column (no conflicts possible through it), rather than a
    /// draw from the column's existing domain.
    pub fresh_value_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MutationStreamConfig {
    fn default() -> Self {
        MutationStreamConfig {
            ops: 20,
            insert_weight: 4,
            delete_weight: 2,
            update_weight: 6,
            fd_edit_weight: 1,
            max_insert_batch: 3,
            max_delete_batch: 2,
            fresh_value_rate: 0.25,
            seed: 0xBEEF,
        }
    }
}

/// Generates a mutation stream valid against `(instance, fds)` when the ops
/// are applied *in order* (each op sees the row/FD counts the previous ones
/// left behind — the same sequencing `MutationBatch` validates).
pub fn generate_mutation_stream(
    instance: &Instance,
    fds: &FdSet,
    config: &MutationStreamConfig,
) -> Vec<MutationOp> {
    let arity = instance.schema().arity();
    assert!(arity > 0, "cannot mutate a zero-attribute schema");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Column domains of the *initial* instance: the pool realistic values
    // are drawn from. Fresh values use a counter far outside any domain.
    let mut domains: Vec<Vec<Value>> = (0..arity)
        .map(|a| {
            let attr = AttrId(a as u16);
            let mut values: Vec<Value> = Vec::new();
            for (_, tuple) in instance.tuples() {
                let v = tuple.get(attr);
                if v.is_constant() && !values.contains(v) {
                    values.push(v.clone());
                }
            }
            if values.is_empty() {
                values.push(Value::int(0));
            }
            values
        })
        .collect();
    let mut fresh_counter: i64 = 1_000_000;

    // Simulated state the ops must stay valid against.
    let mut rows = instance.len();
    let mut fd_count = fds.len();
    let mut add_next_fd = true;

    let weights = [
        config.insert_weight,
        config.delete_weight,
        config.update_weight,
        config.fd_edit_weight,
    ];
    let total: u32 = weights.iter().sum::<u32>().max(1);

    let mut draw_value = |rng: &mut StdRng, domains: &mut Vec<Vec<Value>>, attr: usize| -> Value {
        if rng.gen_range(0.0..1.0) < config.fresh_value_rate {
            fresh_counter += 1;
            let v = Value::int(fresh_counter);
            domains[attr].push(v.clone());
            v
        } else {
            let pool = &domains[attr];
            pool[rng.gen_range(0..pool.len())].clone()
        }
    };

    let mut ops = Vec::with_capacity(config.ops);
    for _ in 0..config.ops {
        let mut pick = rng.gen_range(0..total);
        let mut kind = 0usize;
        for (k, w) in weights.iter().enumerate() {
            if pick < *w {
                kind = k;
                break;
            }
            pick -= w;
            kind = k + 1;
        }
        // Fall back to an insert when the drawn kind is impossible now:
        // nothing to delete/update, no FD to remove but the last one, or —
        // for FD adds — an arity-1 schema, where no non-trivial FD exists.
        if (kind == 1 || kind == 2) && rows == 0 {
            kind = 0;
        }
        if kind == 3 && ((add_next_fd && arity < 2) || (!add_next_fd && fd_count <= 1)) {
            kind = 0;
        }
        match kind {
            0 => {
                let batch = rng.gen_range(1..config.max_insert_batch.max(1) + 1);
                let tuples: Vec<Tuple> = (0..batch)
                    .map(|_| {
                        Tuple::new(
                            (0..arity)
                                .map(|a| draw_value(&mut rng, &mut domains, a))
                                .collect(),
                        )
                    })
                    .collect();
                rows += tuples.len();
                ops.push(MutationOp::InsertTuples(tuples));
            }
            1 => {
                let batch = rng
                    .gen_range(1..config.max_delete_batch.max(1) + 1)
                    .min(rows);
                let mut doomed = Vec::with_capacity(batch);
                while doomed.len() < batch {
                    let r = rng.gen_range(0..rows);
                    if !doomed.contains(&r) {
                        doomed.push(r);
                    }
                }
                rows -= doomed.len();
                ops.push(MutationOp::DeleteTuples(doomed));
            }
            2 => {
                let row = rng.gen_range(0..rows);
                let attr = rng.gen_range(0..arity);
                let value = draw_value(&mut rng, &mut domains, attr);
                ops.push(MutationOp::UpdateCell(
                    CellRef::new(row, AttrId(attr as u16)),
                    value,
                ));
            }
            _ => {
                if add_next_fd {
                    let rhs = rng.gen_range(0..arity);
                    let lhs_size = rng.gen_range(1..3usize.min(arity.max(2)));
                    let mut lhs = AttrSet::new();
                    while lhs.len() < lhs_size {
                        let a = rng.gen_range(0..arity);
                        if a != rhs {
                            lhs.insert(AttrId(a as u16));
                        }
                    }
                    fd_count += 1;
                    ops.push(MutationOp::AddFd(Fd::new(lhs, AttrId(rhs as u16))));
                } else {
                    let idx = rng.gen_range(0..fd_count);
                    fd_count -= 1;
                    ops.push(MutationOp::RemoveFd(idx));
                }
                add_next_fd = !add_next_fd;
            }
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_relation::Schema;

    fn base() -> (Instance, FdSet) {
        let schema = Schema::new("R", vec!["A", "B", "C"]).unwrap();
        let inst = Instance::from_int_rows(
            schema.clone(),
            &[vec![1, 1, 1], vec![1, 2, 1], vec![2, 2, 3], vec![3, 1, 3]],
        )
        .unwrap();
        let fds = FdSet::parse(&["A->B", "C->B"], &schema).unwrap();
        (inst, fds)
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let (inst, fds) = base();
        let config = MutationStreamConfig::default();
        let a = generate_mutation_stream(&inst, &fds, &config);
        let b = generate_mutation_stream(&inst, &fds, &config);
        assert_eq!(a, b);
        let other = generate_mutation_stream(
            &inst,
            &fds,
            &MutationStreamConfig {
                seed: 1,
                ..config.clone()
            },
        );
        assert_ne!(a, other);
        assert_eq!(a.len(), config.ops);
    }

    #[test]
    fn streams_apply_cleanly_to_the_problem() {
        use rt_core::{RepairProblem, WeightKind};
        let (inst, fds) = base();
        for seed in 0..8 {
            let config = MutationStreamConfig {
                ops: 15,
                seed,
                ..Default::default()
            };
            let ops = generate_mutation_stream(&inst, &fds, &config);
            let mut problem = RepairProblem::with_weight(&inst, &fds, WeightKind::AttrCount);
            problem
                .apply_mutations(&ops)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // The maintained graph matches a fresh build on the mutated
            // inputs.
            let fresh = RepairProblem::with_weight(
                problem.instance(),
                problem.sigma(),
                WeightKind::AttrCount,
            );
            assert_eq!(problem.conflict_graph(), fresh.conflict_graph());
        }
    }

    #[test]
    fn arity_one_schemas_generate_without_hanging() {
        // A single-attribute schema admits no non-trivial FD, so FD-add
        // draws must fall back to inserts instead of spinning forever.
        let schema = Schema::new("R", vec!["A"]).unwrap();
        let inst = Instance::from_int_rows(schema, &[vec![1], vec![1], vec![2]]).unwrap();
        let fds = FdSet::from_fds(vec![]);
        let ops = generate_mutation_stream(
            &inst,
            &fds,
            &MutationStreamConfig {
                ops: 30,
                fd_edit_weight: 10,
                seed: 9,
                ..Default::default()
            },
        );
        assert_eq!(ops.len(), 30);
        assert!(ops
            .iter()
            .all(|op| !matches!(op, MutationOp::AddFd(_) | MutationOp::RemoveFd(_))));
    }

    #[test]
    fn delete_heavy_streams_never_underflow() {
        let (inst, fds) = base();
        let config = MutationStreamConfig {
            ops: 40,
            insert_weight: 1,
            delete_weight: 10,
            update_weight: 1,
            fd_edit_weight: 0,
            max_delete_batch: 3,
            seed: 5,
            ..Default::default()
        };
        let ops = generate_mutation_stream(&inst, &fds, &config);
        // Replay the simulated row count: it must never go negative and
        // every op must be valid at its point in the stream.
        let mut rows = inst.len();
        for op in &ops {
            match op {
                MutationOp::InsertTuples(t) => rows += t.len(),
                MutationOp::DeleteTuples(d) => {
                    assert!(d.iter().all(|&r| r < rows));
                    rows -= d.len();
                }
                MutationOp::UpdateCell(c, _) => assert!(c.row < rows),
                _ => {}
            }
        }
    }
}
