//! Controlled perturbation of data and FDs (Section 8.1 of the paper).
//!
//! Starting from a clean instance `I_c` and its FDs `Σ_c`, the experiments
//! build the *dirty* inputs handed to the repair algorithms:
//!
//! * **FD perturbation** removes a fraction (`fd_error_rate`) of the LHS
//!   attributes of each FD, yielding `Σ_d`. The removed attributes are the
//!   ground truth the FD repair should re-append.
//! * **Data perturbation** modifies a fraction (`data_error_rate`) of the
//!   cells such that every modification introduces an FD violation, using
//!   the paper's two mechanisms:
//!   - *right-hand-side violations*: pick two tuples agreeing on `X ∪ {A}`
//!     for some FD `X → A ∈ Σ_c` and change one of their `A` values;
//!   - *left-hand-side violations*: pick two tuples that agree on
//!     `X \ {B}`, disagree on `B ∈ X` and on `A`, and overwrite `t_i[B]`
//!     with `t_j[B]` so the pair now violates `X → A`.
//!
//! The result is a [`GroundTruth`] bundling everything the metrics need.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rt_constraints::{AttrSet, Fd, FdSet};
use rt_relation::{AttrId, CellRef, Instance, Value};
use std::collections::HashMap;

/// Perturbation parameters.
#[derive(Debug, Clone, Copy)]
pub struct PerturbConfig {
    /// Fraction of cells to modify (each modification introduces an FD
    /// violation).
    pub data_error_rate: f64,
    /// Fraction of LHS attributes removed from each FD.
    pub fd_error_rate: f64,
    /// Fraction of injected violations that are right-hand-side violations
    /// (the rest are left-hand-side violations).
    pub rhs_violation_fraction: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for PerturbConfig {
    fn default() -> Self {
        PerturbConfig {
            data_error_rate: 0.05,
            fd_error_rate: 0.3,
            rhs_violation_fraction: 0.5,
            seed: 0xDECAF,
        }
    }
}

/// Everything the evaluation metrics need to score a repair.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// The clean instance `I_c`.
    pub clean: Instance,
    /// The dirty instance `I_d` handed to the repair algorithms.
    pub dirty: Instance,
    /// The clean FDs `Σ_c`.
    pub sigma_clean: FdSet,
    /// The perturbed FDs `Σ_d` handed to the repair algorithms.
    pub sigma_dirty: FdSet,
    /// Per FD (positionally aligned with `sigma_dirty`): the attributes that
    /// were removed from the clean LHS — what a perfect FD repair would
    /// re-append.
    pub removed_lhs_attrs: Vec<AttrSet>,
    /// Cells whose value differs between `I_c` and `I_d`.
    pub perturbed_cells: Vec<CellRef>,
}

impl GroundTruth {
    /// Number of injected erroneous cells.
    pub fn error_count(&self) -> usize {
        self.perturbed_cells.len()
    }

    /// Total number of LHS attributes removed while building `Σ_d`.
    pub fn removed_attr_count(&self) -> usize {
        self.removed_lhs_attrs.iter().map(|s| s.len()).sum()
    }
}

/// Applies FD and data perturbation to a clean instance.
pub fn perturb(clean: &Instance, sigma_clean: &FdSet, config: &PerturbConfig) -> GroundTruth {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // --- FD perturbation -------------------------------------------------
    let mut dirty_fds = Vec::with_capacity(sigma_clean.len());
    let mut removed_per_fd = Vec::with_capacity(sigma_clean.len());
    for (_, fd) in sigma_clean.iter() {
        let lhs: Vec<AttrId> = fd.lhs.iter().collect();
        let remove_count =
            ((lhs.len() as f64) * config.fd_error_rate.clamp(0.0, 1.0)).round() as usize;
        // Never remove every attribute: Σ_d FDs keep at least one LHS column
        // unless the clean FD already had an empty LHS.
        let remove_count = remove_count.min(lhs.len().saturating_sub(1));
        let mut shuffled = lhs.clone();
        shuffled.shuffle(&mut rng);
        let removed: AttrSet = shuffled.iter().take(remove_count).copied().collect();
        let new_lhs = fd.lhs.difference(removed);
        dirty_fds.push(Fd::new(new_lhs, fd.rhs));
        removed_per_fd.push(removed);
    }
    let sigma_dirty = FdSet::from_fds(dirty_fds);

    // --- Data perturbation ------------------------------------------------
    let mut dirty = clean.clone();
    let total_cells = clean.cell_count();
    let target_errors =
        ((total_cells as f64) * config.data_error_rate.clamp(0.0, 1.0)).round() as usize;
    let mut perturbed_cells: Vec<CellRef> = Vec::with_capacity(target_errors);

    if target_errors > 0 && !sigma_clean.is_empty() && clean.len() >= 2 {
        // Index tuples by their X∪{A} projection (for RHS violations) and by
        // X\{B} projections (for LHS violations), per FD.
        let mut attempts = 0usize;
        let max_attempts = target_errors * 50 + 100;
        while perturbed_cells.len() < target_errors && attempts < max_attempts {
            attempts += 1;
            let fd_idx = rng.gen_range(0..sigma_clean.len());
            let fd = sigma_clean.get(fd_idx);
            let make_rhs_violation =
                rng.gen_range(0.0..1.0) < config.rhs_violation_fraction.clamp(0.0, 1.0);
            let injected = if make_rhs_violation {
                inject_rhs_violation(&mut dirty, clean, fd, &mut rng)
            } else {
                inject_lhs_violation(&mut dirty, clean, fd, &mut rng)
            };
            if let Some(cell) = injected {
                if !perturbed_cells.contains(&cell) {
                    perturbed_cells.push(cell);
                }
            }
        }
    }

    GroundTruth {
        clean: clean.clone(),
        dirty,
        sigma_clean: sigma_clean.clone(),
        sigma_dirty,
        removed_lhs_attrs: removed_per_fd,
        perturbed_cells,
    }
}

/// Picks a group of tuples agreeing on `X ∪ {A}` and corrupts the RHS of one
/// of them. Returns the modified cell on success.
fn inject_rhs_violation(
    dirty: &mut Instance,
    clean: &Instance,
    fd: &Fd,
    rng: &mut StdRng,
) -> Option<CellRef> {
    let key_attrs: Vec<AttrId> = fd.lhs.with(fd.rhs).iter().collect();
    let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (row, tuple) in dirty.tuples() {
        let key: Vec<Value> = key_attrs.iter().map(|a| tuple.get(*a).clone()).collect();
        groups.entry(key).or_default().push(row);
    }
    let mut candidates: Vec<&Vec<usize>> = groups.values().filter(|g| g.len() >= 2).collect();
    if candidates.is_empty() {
        return None;
    }
    // HashMap iteration order is nondeterministic; sort so a fixed seed
    // always produces the same perturbation.
    candidates.sort_by_key(|g| g[0]);
    let group = candidates[rng.gen_range(0..candidates.len())];
    let &victim = group.choose(rng).expect("group has at least two rows");
    let cell = CellRef::new(victim, fd.rhs);
    // Only corrupt cells that are still clean, so the error count is exact.
    if dirty.cell(cell).ok()? != clean.cell(cell).ok()? {
        return None;
    }
    let new_value = corrupted_value(dirty.cell(cell).ok()?, rng);
    dirty.set_cell(cell, new_value).ok()?;
    Some(cell)
}

/// Picks two tuples agreeing on `X \ {B}` but differing on `B` and on `A`,
/// then overwrites `t_i[B]` with `t_j[B]`. Returns the modified cell.
fn inject_lhs_violation(
    dirty: &mut Instance,
    clean: &Instance,
    fd: &Fd,
    rng: &mut StdRng,
) -> Option<CellRef> {
    let lhs: Vec<AttrId> = fd.lhs.iter().collect();
    if lhs.is_empty() {
        return None;
    }
    let b = *lhs.choose(rng).expect("non-empty lhs");
    let key_attrs: Vec<AttrId> = lhs.iter().copied().filter(|a| *a != b).collect();
    let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (row, tuple) in dirty.tuples() {
        let key: Vec<Value> = key_attrs.iter().map(|a| tuple.get(*a).clone()).collect();
        groups.entry(key).or_default().push(row);
    }
    let mut group_list: Vec<&Vec<usize>> = groups.values().filter(|g| g.len() >= 2).collect();
    // Sort before shuffling so a fixed seed always yields the same order
    // (HashMap iteration order is nondeterministic).
    group_list.sort_by_key(|g| g[0]);
    group_list.shuffle(rng);
    for group in group_list.into_iter().take(20) {
        // Look for a pair differing on B and on the RHS.
        for (i, &ti) in group.iter().enumerate() {
            for &tj in group.iter().skip(i + 1) {
                let a_i = dirty.tuple_unchecked(ti);
                let a_j = dirty.tuple_unchecked(tj);
                if !a_i.get(b).matches(a_j.get(b)) && !a_i.get(fd.rhs).matches(a_j.get(fd.rhs)) {
                    let cell = CellRef::new(ti, b);
                    if dirty.cell(cell).ok()? != clean.cell(cell).ok()? {
                        continue;
                    }
                    let new_value = a_j.get(b).clone();
                    dirty.set_cell(cell, new_value).ok()?;
                    return Some(cell);
                }
            }
        }
    }
    None
}

/// Produces a value different from `current` (integers get shifted into a
/// reserved "corrupted" range so collisions with legitimate categories are
/// impossible; other values get a marker suffix).
fn corrupted_value(current: &Value, rng: &mut StdRng) -> Value {
    match current {
        Value::Int(v) => Value::Int(1_000_000 + (v.abs() % 1000) * 7 + rng.gen_range(0..5)),
        Value::Float(x) => Value::float(1_000_000.5 + (x.get().abs() % 1000.0)),
        Value::Str(s) => Value::Str(format!("{s}_ERR{}", rng.gen_range(0..100))),
        Value::Null => Value::Int(1_000_000 + rng.gen_range(0..1000)),
        Value::Var(_) => Value::Int(1_000_000 + rng.gen_range(0..1000)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_census_like, CensusLikeConfig};

    fn clean_workload() -> (Instance, FdSet) {
        generate_census_like(&CensusLikeConfig::single_fd(600, 10, 4))
    }

    #[test]
    fn fd_perturbation_removes_the_requested_fraction() {
        let (clean, fds) = clean_workload();
        let config = PerturbConfig {
            fd_error_rate: 0.5,
            data_error_rate: 0.0,
            ..Default::default()
        };
        let truth = perturb(&clean, &fds, &config);
        assert_eq!(truth.sigma_dirty.len(), fds.len());
        // Half of the 4 LHS attributes removed → 2 removed attributes.
        assert_eq!(truth.removed_attr_count(), 2);
        // Removed attributes really are gone from the dirty FD.
        let dirty_fd = truth.sigma_dirty.get(0);
        let clean_fd = fds.get(0);
        assert!(dirty_fd.lhs.is_subset_of(clean_fd.lhs));
        assert_eq!(dirty_fd.lhs.len(), 2);
        assert!(truth.removed_lhs_attrs[0].is_disjoint_from(dirty_fd.lhs));
        // No data errors requested → instances identical.
        assert_eq!(truth.error_count(), 0);
        assert_eq!(truth.clean, truth.dirty);
    }

    #[test]
    fn fd_perturbation_never_empties_a_lhs() {
        let (clean, fds) = clean_workload();
        let config = PerturbConfig {
            fd_error_rate: 1.0,
            data_error_rate: 0.0,
            ..Default::default()
        };
        let truth = perturb(&clean, &fds, &config);
        assert!(!truth.sigma_dirty.get(0).lhs.is_empty());
    }

    #[test]
    fn data_perturbation_injects_violations_of_the_clean_fds() {
        let (clean, fds) = clean_workload();
        let config = PerturbConfig {
            fd_error_rate: 0.0,
            data_error_rate: 0.01,
            ..Default::default()
        };
        let truth = perturb(&clean, &fds, &config);
        assert!(truth.error_count() > 0, "some errors must be injected");
        // Every perturbed cell really differs from the clean instance.
        for cell in &truth.perturbed_cells {
            assert_ne!(
                truth.clean.cell(*cell).unwrap(),
                truth.dirty.cell(*cell).unwrap()
            );
        }
        // The diff between clean and dirty is exactly the recorded cells.
        let diff = truth.clean.diff(&truth.dirty).unwrap();
        assert_eq!(diff.distance(), truth.error_count());
        // The clean FDs are now violated.
        assert!(!fds.holds_on(&truth.dirty));
        // The FDs themselves were not perturbed.
        assert_eq!(truth.sigma_dirty, fds);
    }

    #[test]
    fn error_count_tracks_the_requested_rate() {
        let (clean, fds) = clean_workload();
        let config = PerturbConfig {
            fd_error_rate: 0.0,
            data_error_rate: 0.005,
            ..Default::default()
        };
        let truth = perturb(&clean, &fds, &config);
        let requested = (clean.cell_count() as f64 * 0.005).round() as usize;
        // The injector may fall slightly short when it runs out of candidate
        // pairs, but should reach at least half of the requested errors and
        // never exceed them.
        assert!(truth.error_count() <= requested);
        assert!(
            truth.error_count() * 2 >= requested,
            "only {} of {requested} errors injected",
            truth.error_count()
        );
    }

    #[test]
    fn zero_rates_are_a_no_op() {
        let (clean, fds) = clean_workload();
        let config = PerturbConfig {
            fd_error_rate: 0.0,
            data_error_rate: 0.0,
            ..Default::default()
        };
        let truth = perturb(&clean, &fds, &config);
        assert_eq!(truth.clean, truth.dirty);
        assert_eq!(truth.sigma_clean, truth.sigma_dirty);
        assert_eq!(truth.error_count(), 0);
        assert_eq!(truth.removed_attr_count(), 0);
    }

    #[test]
    fn perturbation_is_deterministic_per_seed() {
        let (clean, fds) = clean_workload();
        let config = PerturbConfig {
            data_error_rate: 0.01,
            fd_error_rate: 0.5,
            seed: 5,
            ..Default::default()
        };
        let a = perturb(&clean, &fds, &config);
        let b = perturb(&clean, &fds, &config);
        assert_eq!(a.dirty, b.dirty);
        assert_eq!(a.perturbed_cells, b.perturbed_cells);
        assert_eq!(a.removed_lhs_attrs, b.removed_lhs_attrs);
    }

    #[test]
    fn lhs_violations_affect_lhs_columns() {
        let (clean, fds) = clean_workload();
        let config = PerturbConfig {
            fd_error_rate: 0.0,
            data_error_rate: 0.005,
            rhs_violation_fraction: 0.0, // LHS violations only
            ..Default::default()
        };
        let truth = perturb(&clean, &fds, &config);
        let lhs = fds.get(0).lhs;
        for cell in &truth.perturbed_cells {
            assert!(
                lhs.contains(cell.attr),
                "LHS violation touched non-LHS column {}",
                cell.attr
            );
        }
        if truth.error_count() > 0 {
            assert!(!fds.holds_on(&truth.dirty));
        }
    }

    #[test]
    fn rhs_violations_affect_rhs_column_only() {
        let (clean, fds) = clean_workload();
        let config = PerturbConfig {
            fd_error_rate: 0.0,
            data_error_rate: 0.005,
            rhs_violation_fraction: 1.0, // RHS violations only
            ..Default::default()
        };
        let truth = perturb(&clean, &fds, &config);
        assert!(truth.error_count() > 0);
        for cell in &truth.perturbed_cells {
            assert_eq!(cell.attr, fds.get(0).rhs);
        }
    }
}
