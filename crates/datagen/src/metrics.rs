//! Repair-quality metrics (Section 8.1 of the paper).
//!
//! Given the ground truth produced by [`crate::perturb()`] and a repair
//! `(Σ_r, I_r)`, the metrics score how well the repair undid the
//! perturbation:
//!
//! * **data precision** — of the cells the repair modified, how many were
//!   actually erroneous *and* were restored to the clean value (or set to a
//!   V-instance variable, which the paper counts as correct because the
//!   variable stands for "some fresh value", i.e. the algorithm correctly
//!   identified the cell as wrong);
//! * **data recall** — how many of the erroneous cells were correctly
//!   modified;
//! * **FD precision / recall** — same idea over the attributes appended to
//!   FD left-hand sides, measured against the attributes that the
//!   perturbation removed;
//! * **F-scores** — harmonic means, plus the *combined F-score* (the average
//!   of the data F-score and the FD F-score) reported in Figures 7 and 8.

use crate::perturb::GroundTruth;
use rt_constraints::FdSet;
use rt_relation::{CellRef, Instance};
use std::collections::HashSet;

/// Precision/recall/F-scores of one repair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairQuality {
    /// Fraction of modified cells that were correct modifications.
    pub data_precision: f64,
    /// Fraction of erroneous cells that were correctly modified.
    pub data_recall: f64,
    /// Harmonic mean of data precision and recall.
    pub data_f: f64,
    /// Fraction of appended LHS attributes that were correct.
    pub fd_precision: f64,
    /// Fraction of removed LHS attributes that were re-appended.
    pub fd_recall: f64,
    /// Harmonic mean of FD precision and recall.
    pub fd_f: f64,
    /// Average of `data_f` and `fd_f` (the paper's combined F-score).
    pub combined_f: f64,
    /// Number of cells modified by the repair.
    pub cells_modified: usize,
    /// Number of LHS attributes appended by the repair.
    pub attrs_appended: usize,
}

fn ratio(numerator: usize, denominator: usize) -> f64 {
    if denominator == 0 {
        1.0
    } else {
        numerator as f64 / denominator as f64
    }
}

fn f_score(precision: f64, recall: f64) -> f64 {
    if precision + recall <= f64::EPSILON {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

/// Scores a repair `(Σ_r, I_r)` against the ground truth.
///
/// `sigma_repaired` must be positionally aligned with the dirty FD set (it is
/// the output of the repair algorithms, which only extend LHSs), otherwise
/// the FD metrics fall back to zero credit for unmatched FDs.
pub fn evaluate_repair(
    truth: &GroundTruth,
    sigma_repaired: &FdSet,
    repaired: &Instance,
) -> RepairQuality {
    // ---------------- data metrics ----------------
    let erroneous: HashSet<CellRef> = truth.perturbed_cells.iter().copied().collect();
    let modified: Vec<CellRef> = truth
        .dirty
        .diff(repaired)
        .map(|d| d.changed_cells)
        .unwrap_or_default();
    let mut correct_modifications = 0usize;
    for cell in &modified {
        if !erroneous.contains(cell) {
            continue;
        }
        let repaired_value = repaired.cell(*cell).expect("cell exists");
        let clean_value = truth.clean.cell(*cell).expect("cell exists");
        if repaired_value.is_var() || repaired_value == clean_value {
            correct_modifications += 1;
        }
    }
    let data_precision = ratio(correct_modifications, modified.len());
    let data_recall = ratio(correct_modifications, erroneous.len());
    let data_f = f_score(data_precision, data_recall);

    // ---------------- FD metrics ----------------
    let mut appended_total = 0usize;
    let mut appended_correct = 0usize;
    let removed_total: usize = truth.removed_lhs_attrs.iter().map(|s| s.len()).sum();
    if let Some(deltas) = truth.sigma_dirty.extension_delta(sigma_repaired) {
        for (idx, appended) in deltas.iter().enumerate() {
            appended_total += appended.len();
            let removed = truth
                .removed_lhs_attrs
                .get(idx)
                .copied()
                .unwrap_or_default();
            appended_correct += appended.intersection(removed).len();
        }
    } else {
        // Not a positional relaxation (e.g. a foreign FD set): count every
        // appended attribute as incorrect.
        for (idx, fd) in sigma_repaired.iter() {
            if let Some(original) = truth.sigma_dirty.as_slice().get(idx) {
                appended_total += fd.lhs.difference(original.lhs).len();
            } else {
                appended_total += fd.lhs.len();
            }
        }
    }
    let fd_precision = ratio(appended_correct, appended_total);
    let fd_recall = ratio(appended_correct, removed_total);
    let fd_f = f_score(fd_precision, fd_recall);

    RepairQuality {
        data_precision,
        data_recall,
        data_f,
        fd_precision,
        fd_recall,
        fd_f,
        combined_f: (data_f + fd_f) / 2.0,
        cells_modified: modified.len(),
        attrs_appended: appended_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_census_like, CensusLikeConfig};
    use crate::perturb::{perturb, PerturbConfig};
    use rt_constraints::AttrSet;

    fn truth_with(data_err: f64, fd_err: f64) -> GroundTruth {
        let (clean, fds) = generate_census_like(&CensusLikeConfig::single_fd(400, 10, 4));
        perturb(
            &clean,
            &fds,
            &PerturbConfig {
                data_error_rate: data_err,
                fd_error_rate: fd_err,
                ..Default::default()
            },
        )
    }

    #[test]
    fn perfect_data_repair_scores_one() {
        let truth = truth_with(0.01, 0.0);
        // "Repair" = hand back the clean instance and the (unchanged) FDs.
        let q = evaluate_repair(&truth, &truth.sigma_dirty, &truth.clean);
        assert_eq!(q.data_precision, 1.0);
        assert_eq!(q.data_recall, 1.0);
        assert_eq!(q.data_f, 1.0);
        // No FD perturbation, no appended attributes → both FD metrics are 1.
        assert_eq!(q.fd_precision, 1.0);
        assert_eq!(q.fd_recall, 1.0);
        assert_eq!(q.combined_f, 1.0);
    }

    #[test]
    fn doing_nothing_scores_zero_recall() {
        let truth = truth_with(0.01, 0.0);
        let q = evaluate_repair(&truth, &truth.sigma_dirty, &truth.dirty);
        assert_eq!(q.cells_modified, 0);
        assert_eq!(q.data_precision, 1.0); // vacuous precision
        assert_eq!(q.data_recall, 0.0);
        assert_eq!(q.data_f, 0.0);
    }

    #[test]
    fn perfect_fd_repair_scores_one() {
        let truth = truth_with(0.0, 0.5);
        // Re-append exactly the removed attributes.
        let repaired_fds = truth.sigma_dirty.extend_lhs(&truth.removed_lhs_attrs);
        let q = evaluate_repair(&truth, &repaired_fds, &truth.dirty);
        assert_eq!(q.fd_precision, 1.0);
        assert_eq!(q.fd_recall, 1.0);
        assert_eq!(q.fd_f, 1.0);
        // Data untouched and no errors existed → data precision/recall 1.
        assert_eq!(q.data_precision, 1.0);
        assert_eq!(q.data_recall, 1.0);
        assert_eq!(q.combined_f, 1.0);
    }

    #[test]
    fn wrong_fd_extension_hurts_precision_not_recall_base() {
        let truth = truth_with(0.0, 0.5);
        let removed = truth.removed_lhs_attrs[0];
        // Append one attribute that was NOT removed (and is a legal extension).
        let dirty_fd = truth.sigma_dirty.get(0);
        let wrong: Vec<rt_relation::AttrId> = (0..truth.clean.schema().arity() as u16)
            .map(rt_relation::AttrId)
            .filter(|a| !dirty_fd.lhs.contains(*a) && *a != dirty_fd.rhs && !removed.contains(*a))
            .take(1)
            .collect();
        assert_eq!(wrong.len(), 1);
        let ext = vec![AttrSet::from_attrs(wrong)];
        let repaired_fds = truth.sigma_dirty.extend_lhs(&ext);
        let q = evaluate_repair(&truth, &repaired_fds, &truth.dirty);
        assert_eq!(q.fd_precision, 0.0);
        assert_eq!(q.fd_recall, 0.0);
        assert_eq!(q.attrs_appended, 1);
    }

    #[test]
    fn variable_cells_count_as_correct_modifications() {
        let truth = truth_with(0.01, 0.0);
        assert!(truth.error_count() > 0);
        // Build a repair that sets every erroneous cell to a fresh variable.
        let mut repaired = truth.dirty.clone();
        for cell in &truth.perturbed_cells {
            let v = repaired.fresh_var(cell.attr);
            repaired.set_cell(*cell, v).unwrap();
        }
        let q = evaluate_repair(&truth, &truth.sigma_dirty, &repaired);
        assert_eq!(q.data_precision, 1.0);
        assert_eq!(q.data_recall, 1.0);
    }

    #[test]
    fn modifying_clean_cells_hurts_precision() {
        let truth = truth_with(0.01, 0.0);
        let mut repaired = truth.clean.clone(); // fixes all errors...
                                                // ...but also corrupts one previously clean cell.
        let clean_cell = (0..truth.clean.len())
            .flat_map(|row| {
                truth
                    .clean
                    .schema()
                    .attr_ids()
                    .map(move |attr| rt_relation::CellRef::new(row, attr))
            })
            .find(|c| !truth.perturbed_cells.contains(c))
            .unwrap();
        repaired
            .set_cell(clean_cell, rt_relation::Value::Int(123456789))
            .unwrap();
        let q = evaluate_repair(&truth, &truth.sigma_dirty, &repaired);
        assert!(q.data_precision < 1.0);
        assert_eq!(q.data_recall, 1.0);
        assert!(q.data_f < 1.0);
    }

    #[test]
    fn f_score_edge_cases() {
        assert_eq!(f_score(0.0, 0.0), 0.0);
        assert_eq!(f_score(1.0, 1.0), 1.0);
        assert!((f_score(0.5, 1.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ratio(0, 0), 1.0);
        assert_eq!(ratio(3, 4), 0.75);
    }
}
