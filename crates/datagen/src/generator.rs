//! Census-like synthetic data with planted functional dependencies.
//!
//! The generator produces a relation whose attributes fall into three
//! groups:
//!
//! * **FD left-hand sides** — categorical attributes with configurable
//!   cardinality and a Zipf-ish skew (census attributes such as
//!   `education`, `occupation`, `state` are heavily skewed);
//! * **FD right-hand sides** — values computed as a deterministic function
//!   of the corresponding LHS projection, so each planted FD holds *exactly*
//!   on the clean instance (mirroring the paper's use of FDs mined from the
//!   clean data);
//! * **free attributes** — independent categorical noise, so the relation
//!   has plenty of attributes the repair algorithms could (wrongly or
//!   rightly) append to FD LHSs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rt_constraints::{AttrSet, Fd, FdSet};
use rt_relation::{AttrId, Instance, Schema, Tuple, Value};

/// One FD to plant in the generated data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedFd {
    /// Attribute indices of the left-hand side.
    pub lhs: Vec<usize>,
    /// Attribute index of the right-hand side.
    pub rhs: usize,
    /// Number of distinct values the RHS attribute takes.
    pub rhs_cardinality: usize,
}

/// Configuration of the census-like generator.
///
/// Tuples are generated around latent *entities* (think: the same person or
/// household appearing several times across survey waves). All non-RHS
/// attributes are deterministic functions of the entity, so tuples of the
/// same entity duplicate each other — exactly the kind of redundancy the
/// paper's error-injection procedure needs (it looks for pairs of tuples
/// agreeing on `X ∪ {A}` or on `X \ {B}`). RHS attributes are deterministic
/// functions of their LHS *values*, so every planted FD holds exactly.
#[derive(Debug, Clone)]
pub struct CensusLikeConfig {
    /// Number of tuples to generate.
    pub tuples: usize,
    /// Number of attributes in the schema (at most 64).
    pub attributes: usize,
    /// FDs to plant.
    pub planted_fds: Vec<PlantedFd>,
    /// Average number of tuples sharing one latent entity (≥ 1).
    pub duplication_factor: f64,
    /// Zipf-style skew exponent for entity popularity (0 = uniform).
    pub skew: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for CensusLikeConfig {
    fn default() -> Self {
        CensusLikeConfig {
            tuples: 1000,
            attributes: 12,
            planted_fds: vec![PlantedFd {
                lhs: vec![0, 1, 2],
                rhs: 3,
                rhs_cardinality: 50,
            }],
            duplication_factor: 3.0,
            skew: 0.4,
            seed: 0xC0FFEE,
        }
    }
}

impl CensusLikeConfig {
    /// Convenience: one planted FD with `lhs_size` LHS attributes (the
    /// Figure 7 setup uses a single FD with 6 LHS attributes).
    pub fn single_fd(tuples: usize, attributes: usize, lhs_size: usize) -> Self {
        let lhs_size = lhs_size.min(attributes.saturating_sub(1)).max(1);
        CensusLikeConfig {
            tuples,
            attributes,
            planted_fds: vec![PlantedFd {
                lhs: (0..lhs_size).collect(),
                rhs: lhs_size,
                rhs_cardinality: 40,
            }],
            ..Default::default()
        }
    }

    /// Convenience: `fd_count` planted FDs, each with `lhs_size` LHS
    /// attributes, laid out over disjoint attribute ranges when possible.
    pub fn multi_fd(tuples: usize, attributes: usize, fd_count: usize, lhs_size: usize) -> Self {
        let mut planted = Vec::new();
        let span = lhs_size + 1;
        for k in 0..fd_count {
            let base = (k * span) % attributes.saturating_sub(span).max(1);
            let lhs: Vec<usize> = (0..lhs_size).map(|i| (base + i) % attributes).collect();
            let mut rhs = (base + lhs_size) % attributes;
            if lhs.contains(&rhs) {
                rhs = (rhs + 1) % attributes;
            }
            planted.push(PlantedFd {
                lhs,
                rhs,
                rhs_cardinality: 40,
            });
        }
        CensusLikeConfig {
            tuples,
            attributes,
            planted_fds: planted,
            ..Default::default()
        }
    }
}

/// Census-flavoured attribute names; indices beyond the list fall back to
/// `attrN`.
const ATTR_NAMES: &[&str] = &[
    "age_group",
    "workclass",
    "education",
    "marital_status",
    "occupation",
    "relationship",
    "race",
    "sex",
    "native_country",
    "income_band",
    "hours_band",
    "industry",
    "union_member",
    "veteran",
    "citizenship",
    "state",
    "household_type",
    "migration_code",
    "employer_size",
    "tax_status",
];

fn attr_name(i: usize) -> String {
    ATTR_NAMES
        .get(i)
        .map(|s| s.to_string())
        .unwrap_or_else(|| format!("attr{i}"))
}

/// Draws a category in `[0, cardinality)` with a mild power-law skew.
fn skewed_category(rng: &mut StdRng, cardinality: usize, skew: f64) -> i64 {
    if cardinality <= 1 {
        return 0;
    }
    let u: f64 = rng.gen_range(0.0..1.0);
    // Inverse-CDF of a truncated power law; skew = 0 degenerates to uniform.
    let x = if skew <= f64::EPSILON {
        u
    } else {
        u.powf(1.0 + skew)
    };
    ((x * cardinality as f64) as usize).min(cardinality - 1) as i64
}

/// Deterministic mixing of LHS values into an RHS category, so planted FDs
/// hold exactly.
fn mix_to_category(values: &[i64], salt: u64, cardinality: usize) -> i64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ salt;
    for &v in values {
        h ^= v as u64;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
    }
    (h % cardinality.max(1) as u64) as i64
}

/// Generates a clean census-like instance and the FD set it satisfies.
///
/// The returned FD set contains exactly the planted FDs (it is the ground
/// truth `Σ_c` of the experiments). Every planted FD is guaranteed to hold on
/// the returned instance; free attributes may accidentally satisfy more FDs,
/// which is harmless for the experiments (they only perturb the planted
/// ones).
pub fn generate_census_like(config: &CensusLikeConfig) -> (Instance, FdSet) {
    assert!(
        config.attributes <= 64,
        "at most 64 attributes are supported"
    );
    for fd in &config.planted_fds {
        assert!(fd.rhs < config.attributes, "planted FD rhs out of range");
        assert!(!fd.lhs.contains(&fd.rhs), "planted FD must not be trivial");
        assert!(
            fd.lhs.iter().all(|&a| a < config.attributes),
            "planted FD lhs out of range"
        );
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = Schema::new(
        "census_like",
        (0..config.attributes).map(attr_name).collect::<Vec<_>>(),
    )
    .expect("valid schema");

    // Which attributes are RHS of some planted FD?
    let mut rhs_of: Vec<Option<usize>> = vec![None; config.attributes];
    for (k, fd) in config.planted_fds.iter().enumerate() {
        rhs_of[fd.rhs] = Some(k);
    }

    // Census-style categorical cardinalities. Attributes that participate in
    // a planted FD's LHS are narrow (sex/race/marital-status-like columns:
    // real FDs tend to hold among low-cardinality demographic attributes),
    // while unrelated columns are wider. Under the distinct-count weighting
    // this makes re-appending a genuinely removed LHS attribute cheaper than
    // "explaining away" violations with an unrelated wide column — the same
    // asymmetry the paper relies on with the real Census attributes.
    let in_some_lhs: Vec<bool> = {
        let mut used = vec![false; config.attributes];
        for fd in &config.planted_fds {
            for &a in &fd.lhs {
                used[a] = true;
            }
        }
        used
    };
    let cardinalities: Vec<usize> = (0..config.attributes)
        .map(|i| {
            if in_some_lhs[i] {
                [8usize, 5, 3, 2][i % 4]
            } else {
                [45usize, 25, 15, 9][i % 4]
            }
        })
        .collect();

    // Latent entities: the same entity re-appears `duplication_factor` times
    // on average, with a popularity skew.
    let entity_count =
        (((config.tuples as f64) / config.duplication_factor.max(1.0)).ceil() as usize).max(1);

    // Record-level attributes: the last two attributes not referenced by any
    // planted FD take per-row (near-unique) values, like the `Phone` column
    // of the paper's Figure 1. They guarantee that even records of the same
    // entity are distinguishable, so a pure FD repair (τ = 0) always exists —
    // at the price of appending a near-key attribute, exactly the expensive
    // relaxation the paper's weighting is designed to discourage.
    let used_by_fds: Vec<bool> = {
        let mut used = vec![false; config.attributes];
        for fd in &config.planted_fds {
            used[fd.rhs] = true;
            for &a in &fd.lhs {
                used[a] = true;
            }
        }
        used
    };
    let record_attrs: Vec<usize> = (0..config.attributes)
        .rev()
        .filter(|&a| !used_by_fds[a])
        .take(2)
        .collect();

    // Free attributes (not referenced by any planted FD, not record-level)
    // are *correlated* with the planted LHS: each is a deterministic function
    // of a small subset of the first planted FD's LHS. Real census columns
    // are heavily correlated (education ↔ occupation ↔ income band), and this
    // correlation is what makes the paper's FD repairs meaningful: a column
    // unrelated to the dependency usually does NOT separate two tuples that
    // clash on a weakened LHS, so relaxing the FD with an arbitrary cheap
    // column does not restore consistency — only the genuinely removed
    // attributes (or a near-key record column) do.
    let correlation_sources: Vec<usize> = config
        .planted_fds
        .first()
        .map(|fd| fd.lhs.clone())
        .unwrap_or_default();
    let free_sources = |attr: usize| -> Vec<usize> {
        if correlation_sources.is_empty() {
            return Vec::new();
        }
        // Two deterministic picks from the LHS, varying per attribute.
        let n = correlation_sources.len();
        let first = correlation_sources[attr % n];
        let second = correlation_sources[(attr / 2 + 1) % n];
        vec![first, second]
    };

    let mut instance = Instance::new(schema.clone());
    for row in 0..config.tuples {
        let entity = skewed_category(&mut rng, entity_count, config.skew) as u64;
        let mut cells = vec![Value::Null; config.attributes];
        // First pass: LHS attributes are deterministic functions of the
        // entity (so entity-mates duplicate each other); record-level
        // attributes vary per row; other free attributes are filled in the
        // second pass from their correlation sources.
        for a in 0..config.attributes {
            if rhs_of[a].is_none() {
                if record_attrs.contains(&a) {
                    cells[a] = Value::Int(mix_to_category(
                        &[row as i64],
                        (a as u64).wrapping_mul(0x51_7C_C1) ^ config.seed,
                        config.tuples.max(2) * 4,
                    ));
                } else if used_by_fds[a] || correlation_sources.is_empty() {
                    cells[a] = Value::Int(mix_to_category(
                        &[entity as i64],
                        (a as u64) ^ config.seed.rotate_left(17),
                        cardinalities[a],
                    ));
                }
            }
        }
        // Free correlated attributes: functions of their LHS sources.
        for a in 0..config.attributes {
            if rhs_of[a].is_none()
                && !record_attrs.contains(&a)
                && !used_by_fds[a]
                && !correlation_sources.is_empty()
            {
                let sources: Vec<i64> = free_sources(a)
                    .iter()
                    .map(|&s| match &cells[s] {
                        Value::Int(v) => *v,
                        _ => 0,
                    })
                    .collect();
                cells[a] = Value::Int(mix_to_category(
                    &sources,
                    (a as u64).wrapping_mul(0x9E1F) ^ config.seed,
                    cardinalities[a],
                ));
            }
        }
        // Second pass: RHS attributes as functions of their LHS projections.
        // Planted FDs whose LHS contains another planted RHS are resolved in
        // declaration order (generator callers keep LHSs free-attribute-only
        // in practice).
        for (k, fd) in config.planted_fds.iter().enumerate() {
            let lhs_values: Vec<i64> = fd
                .lhs
                .iter()
                .map(|&a| match &cells[a] {
                    Value::Int(v) => *v,
                    _ => 0,
                })
                .collect();
            cells[fd.rhs] = Value::Int(mix_to_category(&lhs_values, k as u64, fd.rhs_cardinality));
        }
        instance.push(Tuple::new(cells)).expect("arity matches");
    }

    let fds = FdSet::from_fds(
        config
            .planted_fds
            .iter()
            .map(|fd| {
                Fd::new(
                    AttrSet::from_attrs(fd.lhs.iter().map(|&a| AttrId(a as u16))),
                    AttrId(fd.rhs as u16),
                )
            })
            .collect(),
    );
    (instance, fds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_fds_hold_exactly() {
        let config = CensusLikeConfig::single_fd(500, 10, 4);
        let (instance, fds) = generate_census_like(&config);
        assert_eq!(instance.len(), 500);
        assert_eq!(instance.schema().arity(), 10);
        assert_eq!(fds.len(), 1);
        assert!(
            fds.holds_on(&instance),
            "planted FD must hold on the clean instance"
        );
    }

    #[test]
    fn multi_fd_configuration_plants_every_fd() {
        let config = CensusLikeConfig::multi_fd(400, 14, 3, 2);
        let (instance, fds) = generate_census_like(&config);
        assert_eq!(fds.len(), 3);
        for (_, fd) in fds.iter() {
            assert!(fd.holds_on(&instance), "planted FD {fd} must hold");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = CensusLikeConfig {
            seed: 7,
            ..CensusLikeConfig::single_fd(200, 8, 3)
        };
        let (a, _) = generate_census_like(&config);
        let (b, _) = generate_census_like(&config);
        assert_eq!(a, b);
        let other = CensusLikeConfig { seed: 8, ..config };
        let (c, _) = generate_census_like(&other);
        assert_ne!(a, c);
    }

    #[test]
    fn attribute_cardinalities_are_plausible() {
        let config = CensusLikeConfig::single_fd(1000, 12, 4);
        let (instance, _) = generate_census_like(&config);
        // No column should be constant and none should be fully unique
        // (census columns are categorical).
        for attr in instance.schema().attr_ids() {
            let distinct = instance.distinct_count(attr);
            assert!(distinct >= 2, "column {attr} is constant");
            assert!(distinct <= instance.len(), "column {attr} too wide");
        }
    }

    #[test]
    fn lhs_projection_has_reasonable_cardinality() {
        // The conflict graphs built by the experiments stay small only if the
        // planted LHS has many distinct projections; guard against generator
        // regressions that would blow up the benchmarks.
        let config = CensusLikeConfig::single_fd(2000, 10, 6);
        let (instance, fds) = generate_census_like(&config);
        let lhs: Vec<AttrId> = fds.get(0).lhs.iter().collect();
        let distinct = instance.distinct_projection_count(&lhs);
        assert!(
            distinct * 4 >= instance.len(),
            "LHS projection too coarse: {distinct} groups for {} tuples",
            instance.len()
        );
    }

    #[test]
    fn names_are_census_flavoured_and_unique() {
        let config = CensusLikeConfig::single_fd(50, 25, 3);
        let (instance, _) = generate_census_like(&config);
        let names: Vec<&str> = instance.schema().attributes().map(|(_, n)| n).collect();
        assert_eq!(names[0], "age_group");
        assert_eq!(names.len(), 25);
        let unique: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    #[should_panic(expected = "trivial")]
    fn trivial_planted_fd_is_rejected() {
        let config = CensusLikeConfig {
            planted_fds: vec![PlantedFd {
                lhs: vec![0, 1],
                rhs: 1,
                rhs_cardinality: 5,
            }],
            ..CensusLikeConfig::default()
        };
        let _ = generate_census_like(&config);
    }
}
