//! A simple undirected graph over integer vertices.

use std::collections::BTreeSet;

/// Undirected graph with `usize` vertex identifiers.
///
/// Vertices are implicit: any `usize` smaller than [`UndirectedGraph::vertex_bound`]
/// may appear in an edge, and isolated vertices simply never show up in the
/// adjacency lists. Parallel edges are collapsed; self-loops are rejected
/// (two copies of the same tuple can never violate an FD with themselves).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UndirectedGraph {
    /// adjacency[v] = sorted set of neighbours of v.
    adjacency: Vec<BTreeSet<usize>>,
    edge_count: usize,
}

impl UndirectedGraph {
    /// Creates an empty graph able to hold vertices `0..n`.
    pub fn with_vertices(n: usize) -> Self {
        UndirectedGraph {
            adjacency: vec![BTreeSet::new(); n],
            edge_count: 0,
        }
    }

    /// Largest vertex id representable without growing (`n` from
    /// [`UndirectedGraph::with_vertices`], possibly grown by `add_edge`).
    pub fn vertex_bound(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of vertices with at least one incident edge.
    pub fn non_isolated_vertex_count(&self) -> usize {
        self.adjacency.iter().filter(|a| !a.is_empty()).count()
    }

    /// `true` when the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edge_count == 0
    }

    /// Adds an undirected edge `{u, v}`. Returns `true` when the edge is new.
    ///
    /// Self-loops are ignored (returns `false`). The vertex set grows on
    /// demand.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        if u == v {
            return false;
        }
        let needed = u.max(v) + 1;
        if needed > self.adjacency.len() {
            self.adjacency.resize(needed, BTreeSet::new());
        }
        let inserted = self.adjacency[u].insert(v);
        self.adjacency[v].insert(u);
        if inserted {
            self.edge_count += 1;
        }
        inserted
    }

    /// `true` when `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adjacency
            .get(u)
            .map(|a| a.contains(&v))
            .unwrap_or(false)
    }

    /// Degree of a vertex (0 for unknown vertices).
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency.get(v).map(BTreeSet::len).unwrap_or(0)
    }

    /// Neighbours of a vertex, ascending.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.adjacency
            .get(v)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Iterates every edge exactly once as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(u, adj)| {
            adj.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Vertices with at least one incident edge, ascending.
    pub fn non_isolated_vertices(&self) -> impl Iterator<Item = usize> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .filter(|(_, adj)| !adj.is_empty())
            .map(|(v, _)| v)
    }

    /// Builds the union of this graph with another (same semantics as adding
    /// every edge of `other`).
    pub fn union(&self, other: &UndirectedGraph) -> UndirectedGraph {
        let mut out = self.clone();
        for (u, v) in other.edges() {
            out.add_edge(u, v);
        }
        out
    }

    /// Checks whether `cover` touches every edge.
    pub fn is_vertex_cover(&self, cover: &BTreeSet<usize>) -> bool {
        self.edges()
            .all(|(u, v)| cover.contains(&u) || cover.contains(&v))
    }

    /// Builds a graph directly from an edge list (convenience for tests).
    pub fn from_edges(edges: &[(usize, usize)]) -> Self {
        let mut g = UndirectedGraph::default();
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Connected components over the non-isolated vertices, each sorted
    /// ascending, ordered by their smallest vertex.
    ///
    /// Isolated vertices are omitted: they carry no edges, so no repair
    /// algorithm ever needs them. The deterministic ordering is what lets
    /// per-component work fan out over threads and merge back bit-identically
    /// (see `approx_vertex_cover_with`).
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let n = self.adjacency.len();
        let mut visited = vec![false; n];
        let mut components = Vec::new();
        let mut stack = Vec::new();
        for start in 0..n {
            if visited[start] || self.adjacency[start].is_empty() {
                continue;
            }
            let mut component = Vec::new();
            visited[start] = true;
            stack.push(start);
            while let Some(v) = stack.pop() {
                component.push(v);
                for u in self.neighbors(v) {
                    if !visited[u] {
                        visited[u] = true;
                        stack.push(u);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }

    /// Number of distinct connected components containing at least one of
    /// `seeds` and at least one edge.
    ///
    /// The traversal is scoped: only the components actually reachable from
    /// the seeds are walked, so the cost is proportional to the *affected*
    /// part of the graph, not to the whole graph. Incremental maintenance
    /// uses this to report how many components a mutation dirtied.
    pub fn components_touching(&self, seeds: &[usize]) -> usize {
        let n = self.adjacency.len();
        // A hash set, not a vec![false; n]: the visited structure must also
        // cost only as much as the part actually walked.
        let mut visited: std::collections::HashSet<usize> = std::collections::HashSet::new();
        let mut components = 0usize;
        let mut stack = Vec::new();
        for &seed in seeds {
            if seed >= n || visited.contains(&seed) || self.adjacency[seed].is_empty() {
                continue;
            }
            components += 1;
            visited.insert(seed);
            stack.push(seed);
            while let Some(v) = stack.pop() {
                for u in self.neighbors(v) {
                    if visited.insert(u) {
                        stack.push(u);
                    }
                }
            }
        }
        components
    }

    /// The subgraph induced by `vertices` (which must be sorted ascending),
    /// with vertex ids remapped to `0..vertices.len()`.
    ///
    /// Returns the local graph; local id `i` corresponds to `vertices[i]`.
    pub fn induced_subgraph(&self, vertices: &[usize]) -> UndirectedGraph {
        let mut local = UndirectedGraph::with_vertices(vertices.len());
        for (li, &v) in vertices.iter().enumerate() {
            for u in self.neighbors(v) {
                if u > v {
                    if let Ok(lu) = vertices.binary_search(&u) {
                        local.add_edge(li, lu);
                    }
                }
            }
        }
        local
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_dedups_and_grows() {
        let mut g = UndirectedGraph::with_vertices(2);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0)); // duplicate (other orientation)
        assert!(g.add_edge(0, 5)); // grows vertex set
        assert_eq!(g.edge_count(), 2);
        assert!(g.vertex_bound() >= 6);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(0, 5));
        assert!(!g.has_edge(1, 5));
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = UndirectedGraph::default();
        assert!(!g.add_edge(3, 3));
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (0, 2), (0, 3), (2, 3)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.degree(9), 0);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(g.non_isolated_vertex_count(), 4);
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = UndirectedGraph::from_edges(&[(1, 0), (2, 1), (3, 2)]);
        let edges: Vec<(usize, usize)> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn union_merges_edge_sets() {
        let a = UndirectedGraph::from_edges(&[(0, 1)]);
        let b = UndirectedGraph::from_edges(&[(1, 2), (0, 1)]);
        let u = a.union(&b);
        assert_eq!(u.edge_count(), 2);
        assert!(u.has_edge(0, 1) && u.has_edge(1, 2));
    }

    #[test]
    fn components_touching_counts_seeded_components_once() {
        // Components: {0,1,2}, {4,5}, {7,8}; vertex 9 is isolated.
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (4, 5), (7, 8)]);
        assert_eq!(g.components_touching(&[]), 0);
        assert_eq!(g.components_touching(&[0]), 1);
        assert_eq!(g.components_touching(&[0, 2]), 1); // same component
        assert_eq!(g.components_touching(&[1, 5]), 2);
        assert_eq!(g.components_touching(&[3, 99]), 0); // isolated / unknown
        assert_eq!(g.components_touching(&[0, 4, 7]), 3);
    }

    #[test]
    fn is_vertex_cover_checks_all_edges() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (2, 3)]);
        let cover: BTreeSet<usize> = [1, 2].into_iter().collect();
        assert!(g.is_vertex_cover(&cover));
        let not_cover: BTreeSet<usize> = [0, 3].into_iter().collect();
        assert!(!g.is_vertex_cover(&not_cover));
        let empty_graph = UndirectedGraph::default();
        assert!(empty_graph.is_vertex_cover(&BTreeSet::new()));
    }
}
