//! Minimum vertex cover: 2-approximation, greedy heuristic, exact solver.
//!
//! The paper uses the textbook maximal-matching 2-approximation (`C2opt`);
//! its size is at most twice the optimum, which is exactly what makes
//! `δ_P(Σ', I) = |C2opt| · min(|R|-1, |Σ|)` a `2·min(|R|-1,|Σ|)`-approximate
//! upper bound on the minimum number of cell changes (Theorem 3).

use crate::graph::UndirectedGraph;
use rt_par::{par_map_coarse, Parallelism};
use std::collections::BTreeSet;

/// Below this many edges the per-component fan-out runs inline.
const MIN_EDGES_FOR_PARALLEL: usize = 256;

/// A vertex cover together with the algorithm that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexCover {
    /// Vertices forming the cover.
    pub vertices: BTreeSet<usize>,
}

impl VertexCover {
    /// Number of vertices in the cover.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` when the cover is empty (graph had no edges).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, v: usize) -> bool {
        self.vertices.contains(&v)
    }

    /// Iterates over cover vertices, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.vertices.iter().copied()
    }

    /// Consumes the cover and returns its vertex set.
    pub fn into_set(self) -> BTreeSet<usize> {
        self.vertices
    }
}

/// Maximal-matching based 2-approximate minimum vertex cover.
///
/// Greedily picks an uncovered edge `{u, v}`, adds both endpoints to the
/// cover, and removes every edge incident to `u` or `v`. Any maximal matching
/// has size at least half of the optimum cover, so the returned cover has at
/// most `2 · |OPT|` vertices.
///
/// Determinism: edges are scanned in ascending `(u, v)` order so results are
/// reproducible across runs (important for the experiments and tests).
pub fn matching_vertex_cover(graph: &UndirectedGraph) -> VertexCover {
    let mut cover = BTreeSet::new();
    for (u, v) in graph.edges() {
        if !cover.contains(&u) && !cover.contains(&v) {
            cover.insert(u);
            cover.insert(v);
        }
    }
    debug_assert!(graph.is_vertex_cover(&cover));
    VertexCover { vertices: cover }
}

/// Greedy max-degree vertex cover heuristic.
///
/// Repeatedly adds the highest-degree vertex among the remaining (uncovered)
/// edges. Offers no constant-factor guarantee (Θ(log n) in the worst case)
/// but in practice often returns smaller covers than the matching-based
/// 2-approximation; we use it only for ablation experiments.
pub fn greedy_degree_vertex_cover(graph: &UndirectedGraph) -> VertexCover {
    let n = graph.vertex_bound();
    let mut remaining_degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    // Track which edges remain by storing adjacency as mutable sets.
    let mut adj: Vec<BTreeSet<usize>> = (0..n).map(|v| graph.neighbors(v).collect()).collect();
    let mut cover = BTreeSet::new();
    loop {
        // Find max-degree vertex among remaining edges (ties: smallest id).
        let best = remaining_degree
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(v, d)| (d, std::cmp::Reverse(v)));
        match best {
            Some((_, 0)) | None => break,
            Some((v, _)) => {
                cover.insert(v);
                let neighbors: Vec<usize> = adj[v].iter().copied().collect();
                for u in neighbors {
                    adj[u].remove(&v);
                    remaining_degree[u] = remaining_degree[u].saturating_sub(1);
                }
                adj[v].clear();
                remaining_degree[v] = 0;
            }
        }
    }
    debug_assert!(graph.is_vertex_cover(&cover));
    VertexCover { vertices: cover }
}

/// The default cover used by the repair algorithms: per connected component,
/// the smaller of the matching-based cover and the greedy-by-degree cover.
///
/// Taking the minimum preserves the 2-approximation guarantee (the matching
/// cover provides it per component, and component covers are independent)
/// while usually returning the tighter covers the greedy heuristic finds in
/// practice — e.g. on the paper's Figure 2 conflict graph (a path on four
/// tuples) it returns `{t2, t3}` exactly as the paper does, where the pure
/// matching cover would take all four endpoints. Choosing per component can
/// only tighten the cover further: the global minimum of the two algorithms
/// is one of the `2^k` per-component combinations this picks the best of.
pub fn approx_vertex_cover(graph: &UndirectedGraph) -> VertexCover {
    approx_vertex_cover_with(graph, Parallelism::Serial)
}

/// [`approx_vertex_cover`] with an explicit [`Parallelism`] setting.
///
/// The graph is split into connected components; each component's hybrid
/// cover (min of matching-based and greedy-by-degree) is computed
/// independently — in parallel when `par` allows — and the union of the
/// component covers is returned. Components are processed in deterministic
/// order (by smallest vertex) and never share state, so the result is
/// bit-identical for every `Parallelism` setting.
pub fn approx_vertex_cover_with(graph: &UndirectedGraph, par: Parallelism) -> VertexCover {
    let components = graph.connected_components();
    // Components are few and size-skewed, so use the coarse fan-out (no
    // per-item cutoff); the edge-count gate — a property of the input, so
    // determinism is unaffected — keeps the search's many tiny cover
    // computations inline where thread spawns would dominate.
    let par = if graph.edge_count() < MIN_EDGES_FOR_PARALLEL {
        Parallelism::Serial
    } else {
        par
    };
    let per_component: Vec<Vec<usize>> = par_map_coarse(par, components.len(), |c| {
        let vertices = &components[c];
        let local = graph.induced_subgraph(vertices);
        let matching = matching_vertex_cover(&local);
        let greedy = greedy_degree_vertex_cover(&local);
        let best = if greedy.len() <= matching.len() {
            greedy
        } else {
            matching
        };
        best.iter().map(|li| vertices[li]).collect()
    });
    let mut cover = BTreeSet::new();
    for component_cover in per_component {
        cover.extend(component_cover);
    }
    debug_assert!(graph.is_vertex_cover(&cover));
    VertexCover { vertices: cover }
}

/// Exact minimum vertex cover via bounded branch and bound.
///
/// Exponential in the worst case; intended for graphs with at most a few
/// dozen edges. Used by tests to validate the approximation factor of
/// [`matching_vertex_cover`] and by the example programs on toy instances.
///
/// Returns `None` if the search would exceed `node_budget` recursive calls.
pub fn exact_vertex_cover(graph: &UndirectedGraph, node_budget: usize) -> Option<VertexCover> {
    let edges: Vec<(usize, usize)> = graph.edges().collect();
    if edges.is_empty() {
        return Some(VertexCover {
            vertices: BTreeSet::new(),
        });
    }
    // Upper bound from the 2-approximation.
    let upper = matching_vertex_cover(graph).into_set();
    let mut best: BTreeSet<usize> = upper;
    let mut budget = node_budget;

    fn solve(
        edges: &[(usize, usize)],
        current: &mut BTreeSet<usize>,
        best: &mut BTreeSet<usize>,
        budget: &mut usize,
    ) -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        // Find first uncovered edge.
        let uncovered = edges
            .iter()
            .find(|(u, v)| !current.contains(u) && !current.contains(v))
            .copied();
        match uncovered {
            None => {
                if current.len() < best.len() {
                    *best = current.clone();
                }
                true
            }
            Some((u, v)) => {
                if current.len() + 1 >= best.len() {
                    // Cannot improve on best by adding at least one more vertex.
                    return true;
                }
                // Branch on covering the edge with u, then with v.
                let mut ok = true;
                for pick in [u, v] {
                    let inserted = current.insert(pick);
                    ok &= solve(edges, current, best, budget);
                    if inserted {
                        current.remove(&pick);
                    }
                    if !ok {
                        return false;
                    }
                }
                ok
            }
        }
    }

    let mut current = BTreeSet::new();
    let complete = solve(&edges, &mut current, &mut best, &mut budget);
    if !complete {
        return None;
    }
    debug_assert!(graph.is_vertex_cover(&best));
    Some(VertexCover { vertices: best })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> UndirectedGraph {
        let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        UndirectedGraph::from_edges(&edges)
    }

    #[test]
    fn empty_graph_has_empty_cover() {
        let g = UndirectedGraph::default();
        assert!(matching_vertex_cover(&g).is_empty());
        assert!(greedy_degree_vertex_cover(&g).is_empty());
        assert_eq!(exact_vertex_cover(&g, 10).unwrap().len(), 0);
    }

    #[test]
    fn single_edge() {
        let g = UndirectedGraph::from_edges(&[(0, 1)]);
        let c = matching_vertex_cover(&g);
        assert_eq!(c.len(), 2); // matching cover always takes both endpoints
        assert_eq!(exact_vertex_cover(&g, 100).unwrap().len(), 1);
        assert_eq!(greedy_degree_vertex_cover(&g).len(), 1);
    }

    #[test]
    fn star_graph() {
        // Star K_{1,5}: optimum cover is the centre (size 1).
        let g = UndirectedGraph::from_edges(&[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let exact = exact_vertex_cover(&g, 10_000).unwrap();
        assert_eq!(exact.len(), 1);
        assert!(exact.contains(0));
        let greedy = greedy_degree_vertex_cover(&g);
        assert_eq!(greedy.len(), 1);
        let matching = matching_vertex_cover(&g);
        assert!(matching.len() <= 2 * exact.len());
        assert!(g.is_vertex_cover(&matching.into_set()));
    }

    #[test]
    fn paper_figure2_conflict_graph() {
        // Figure 2: edges (t1,t2), (t2,t3), (t3,t4) — a path of 4 vertices.
        // The paper reports C2opt = {t2, t3}, i.e. size 2, which is optimal.
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (2, 3)]);
        let exact = exact_vertex_cover(&g, 10_000).unwrap();
        assert_eq!(exact.len(), 2);
        let matching = matching_vertex_cover(&g);
        assert!(matching.len() <= 2 * exact.len());
        assert!(g.is_vertex_cover(&matching.into_set()));
    }

    #[test]
    fn matching_cover_is_within_factor_two_on_paths() {
        for n in 2..20 {
            let g = path(n);
            let exact = exact_vertex_cover(&g, 1_000_000).unwrap();
            let approx = matching_vertex_cover(&g);
            assert!(
                approx.len() <= 2 * exact.len().max(1),
                "path of {n}: approx {} vs exact {}",
                approx.len(),
                exact.len()
            );
        }
    }

    #[test]
    fn exact_respects_budget() {
        // A graph big enough that a budget of 1 cannot finish.
        let edges: Vec<(usize, usize)> = (0..20)
            .flat_map(|i| (i + 1..20).map(move |j| (i, j)))
            .collect();
        let g = UndirectedGraph::from_edges(&edges);
        assert!(exact_vertex_cover(&g, 1).is_none());
    }

    #[test]
    fn covers_are_valid_on_random_like_graph() {
        // Deterministic pseudo-random graph built from a simple LCG.
        let mut seed: u64 = 0x2545F4914F6CDD1D;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut g = UndirectedGraph::with_vertices(30);
        for _ in 0..60 {
            let u = (next() % 30) as usize;
            let v = (next() % 30) as usize;
            g.add_edge(u, v);
        }
        let m = matching_vertex_cover(&g);
        let gr = greedy_degree_vertex_cover(&g);
        assert!(g.is_vertex_cover(&m.clone().into_set()));
        assert!(g.is_vertex_cover(&gr.clone().into_set()));
        if let Some(exact) = exact_vertex_cover(&g, 5_000_000) {
            assert!(exact.len() <= m.len());
            assert!(m.len() <= 2 * exact.len().max(1));
        }
    }

    #[test]
    fn cover_accessors() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (2, 3)]);
        let c = matching_vertex_cover(&g);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert!(c.contains(0) && c.contains(3));
        let as_vec: Vec<usize> = c.iter().collect();
        assert_eq!(as_vec, vec![0, 1, 2, 3]);
    }
}
