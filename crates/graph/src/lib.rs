//! # rt-graph
//!
//! Undirected graphs and minimum vertex cover approximation.
//!
//! The paper's repair algorithms repeatedly build *conflict graphs* (vertices
//! are tuples, edges connect tuples that jointly violate an FD) and compute a
//! 2-approximate minimum vertex cover `C2opt` of them. `|C2opt|` both bounds
//! the number of tuples that must be modified (Algorithm 4) and drives the
//! definition of `δ_P(Σ', I) = |C2opt| · min(|R|-1, |Σ|)` used by the search
//! for FD repairs (Section 5).
//!
//! This crate provides:
//!
//! * [`UndirectedGraph`] — an adjacency-list graph over `usize` vertices;
//! * [`vertex_cover::matching_vertex_cover`] — the classical maximal-matching
//!   2-approximation (Garey & Johnson, the paper's reference \[7\]);
//! * [`vertex_cover::greedy_degree_vertex_cover`] — a max-degree greedy
//!   heuristic (no worst-case factor, often smaller covers in practice);
//! * [`vertex_cover::exact_vertex_cover`] — exponential branch-and-bound used
//!   by the test suite to validate the 2-approximation factor on small graphs;
//! * [`vertex_cover::approx_vertex_cover`] — the hybrid cover the repair
//!   algorithms use: per connected component, the smaller of the matching and
//!   greedy covers. Its [`vertex_cover::approx_vertex_cover_with`] variant
//!   computes the components in parallel (`rt-par`) with bit-identical
//!   results for every thread count.

//!
//! ```
//! use rt_graph::{approx_vertex_cover, UndirectedGraph};
//!
//! // A triangle plus a pendant edge: any vertex cover needs two vertices.
//! let mut g = UndirectedGraph::with_vertices(4);
//! for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
//!     g.add_edge(u, v);
//! }
//! let cover = approx_vertex_cover(&g);
//! assert!(cover.vertices.len() >= 2 && cover.vertices.len() <= 4);
//! for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
//!     assert!(cover.contains(u) || cover.contains(v));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod vertex_cover;

pub use graph::UndirectedGraph;
pub use vertex_cover::{
    approx_vertex_cover, approx_vertex_cover_with, exact_vertex_cover, greedy_degree_vertex_cover,
    matching_vertex_cover, VertexCover,
};
