//! Criterion companion of Figure 12: FD-repair search time vs. the relative
//! trust τ_r.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rt_bench::workloads::{Workload, WorkloadSpec};
use rt_core::{search::run_search, RepairProblem, SearchAlgorithm, SearchConfig, WeightKind};

fn bench_search_vs_tau(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure12_tau");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let workload = Workload::build(&WorkloadSpec {
        tuples: 500,
        attributes: 12,
        fd_count: 1,
        lhs_size: 6,
        data_error_rate: 0.005,
        fd_error_rate: 0.5,
        seed: 43,
    });
    let problem = RepairProblem::with_weight(
        workload.dirty_instance(),
        workload.dirty_fds(),
        WeightKind::DistinctCount,
    );
    let config = SearchConfig {
        max_expansions: 800,
        ..Default::default()
    };
    for &tau_r in &[0.1f64, 0.4, 0.7, 0.99] {
        let tau = problem.absolute_tau(tau_r);
        let label = format!("{}%", (tau_r * 100.0) as usize);
        group.bench_with_input(BenchmarkId::new("astar", &label), &tau, |b, &tau| {
            b.iter(|| run_search(&problem, tau, &config, SearchAlgorithm::AStar))
        });
        group.bench_with_input(BenchmarkId::new("best_first", &label), &tau, |b, &tau| {
            b.iter(|| run_search(&problem, tau, &config, SearchAlgorithm::BestFirst))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search_vs_tau);
criterion_main!(benches);
