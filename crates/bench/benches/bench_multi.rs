//! Criterion companion of Figure 13: Range-Repair (Algorithm 6) against
//! Sampling-Repair for a growing τ_r range.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rt_bench::workloads::{Workload, WorkloadSpec};
use rt_core::{sampling_search, RangeSearch, RepairProblem, SearchConfig, WeightKind};

fn bench_multi_repairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure13_multi_repairs");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let workload = Workload::build(&WorkloadSpec {
        tuples: 500,
        attributes: 12,
        fd_count: 1,
        lhs_size: 6,
        data_error_rate: 0.005,
        fd_error_rate: 0.5,
        seed: 47,
    });
    let problem = RepairProblem::with_weight(
        workload.dirty_instance(),
        workload.dirty_fds(),
        WeightKind::DistinctCount,
    );
    let reference = problem.delta_p_original();
    let config = SearchConfig {
        max_expansions: 800,
        ..Default::default()
    };
    for &max_tau_r in &[0.1f64, 0.2, 0.3] {
        let tau_high = ((reference as f64) * max_tau_r).ceil() as usize;
        let step = (((reference as f64) * 0.017).ceil() as usize).max(1);
        let label = format!("{}%", (max_tau_r * 100.0) as usize);
        group.bench_with_input(
            BenchmarkId::new("range_repair", &label),
            &tau_high,
            |b, &hi| b.iter(|| RangeSearch::new(&problem, 0, hi, &config).run_to_end()),
        );
        group.bench_with_input(
            BenchmarkId::new("sampling_repair", &label),
            &tau_high,
            |b, &hi| b.iter(|| sampling_search(&problem, 0, hi, step, &config)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_multi_repairs);
criterion_main!(benches);
