//! Microbenches of the dictionary-encoding layer (PR 4): dictionary build
//! (the one-off interning pass an instance pays at construction), stripped
//! partition refinement over code columns, and code-keyed conflict-graph
//! blocking.
//!
//! NOTE: the CI container is single-core and offline, so wall-clock numbers
//! recorded there are not meaningful — the gated evidence for this layer is
//! `bench_gate`'s deterministic work counters (`key_bytes_hashed`,
//! `key_allocs`, `value_compares`; see `ci/bench_baseline.json` and
//! `BENCH_pr4.json`). These benches exist so multi-core hardware can
//! measure the wall-clock side later.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rt_bench::workloads::{Workload, WorkloadSpec};
use rt_constraints::{AttrSet, ConflictGraph, PartitionStore, StrippedPartition};
use rt_relation::{AttrId, Instance, Tuple};

fn workload(tuples: usize) -> Workload {
    Workload::build(&WorkloadSpec {
        tuples,
        attributes: 10,
        fd_count: 2,
        lhs_size: 3,
        data_error_rate: 0.01,
        fd_error_rate: 0.4,
        seed: 31,
    })
}

/// Re-encoding an instance from raw tuples: the full dictionary build.
fn bench_dict_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_dict_build");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &tuples in &[500usize, 1000, 2000] {
        let instance = workload(tuples).dirty_instance().clone();
        let schema = instance.schema().clone();
        let rows: Vec<Tuple> = instance.tuples().map(|(_, t)| t.clone()).collect();
        group.bench_with_input(BenchmarkId::new("from_tuples", tuples), &tuples, |b, _| {
            b.iter(|| Instance::from_tuples(schema.clone(), rows.clone()).unwrap())
        });
    }
    group.finish();
}

/// Single-attribute partitions plus TANE-style refinement to 3-attribute
/// sets, through the cached store and directly.
fn bench_partition_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_partition_refine");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &tuples in &[500usize, 1000, 2000] {
        let instance = workload(tuples).dirty_instance().clone();
        let attrs = AttrSet::from_attrs([AttrId(0), AttrId(1), AttrId(2)]);
        group.bench_with_input(BenchmarkId::new("store", tuples), &tuples, |b, _| {
            b.iter(|| {
                let mut store = PartitionStore::new(instance.schema().arity());
                store.partition(&instance, attrs)
            })
        });
        group.bench_with_input(BenchmarkId::new("direct", tuples), &tuples, |b, _| {
            b.iter(|| StrippedPartition::compute(&instance, attrs))
        });
    }
    group.finish();
}

/// Code-keyed conflict-graph blocking (the phase-1 hot path of every
/// engine build).
fn bench_conflict_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_conflict_blocking");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &tuples in &[500usize, 1000, 2000] {
        let w = workload(tuples);
        group.bench_with_input(BenchmarkId::new("build", tuples), &tuples, |b, _| {
            b.iter(|| ConflictGraph::build(w.dirty_instance(), w.dirty_fds()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dict_build,
    bench_partition_refinement,
    bench_conflict_blocking
);
criterion_main!(benches);
