//! Criterion companion of Figure 9: FD-repair search time vs. number of
//! tuples, A*-Repair against Best-First-Repair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rt_bench::workloads::{Workload, WorkloadSpec};
use rt_core::{search::run_search, RepairProblem, SearchAlgorithm, SearchConfig, WeightKind};

fn bench_search_vs_tuples(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure9_tuples");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &tuples in &[250usize, 500, 1000] {
        let workload = Workload::build(&WorkloadSpec {
            tuples,
            attributes: 12,
            fd_count: 2,
            lhs_size: 4,
            data_error_rate: 0.002,
            fd_error_rate: 0.5,
            seed: 31,
        });
        let problem = RepairProblem::with_weight(
            workload.dirty_instance(),
            workload.dirty_fds(),
            WeightKind::DistinctCount,
        );
        let tau = problem.absolute_tau(0.01);
        let config = SearchConfig {
            max_expansions: 800,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("astar", tuples), &tuples, |b, _| {
            b.iter(|| run_search(&problem, tau, &config, SearchAlgorithm::AStar))
        });
        group.bench_with_input(BenchmarkId::new("best_first", tuples), &tuples, |b, _| {
            b.iter(|| run_search(&problem, tau, &config, SearchAlgorithm::BestFirst))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search_vs_tuples);
criterion_main!(benches);
