//! Criterion companion of Figure 11: FD-repair search time vs. number of FDs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rt_bench::workloads::{Workload, WorkloadSpec};
use rt_core::{search::run_search, RepairProblem, SearchAlgorithm, SearchConfig, WeightKind};

fn bench_search_vs_fds(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure11_fds");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &fd_count in &[1usize, 2, 3] {
        let workload = Workload::build(&WorkloadSpec {
            tuples: 400,
            attributes: 14,
            fd_count,
            lhs_size: 3,
            data_error_rate: 0.002,
            fd_error_rate: 0.4,
            seed: 41,
        });
        let problem = RepairProblem::with_weight(
            workload.dirty_instance(),
            workload.dirty_fds(),
            WeightKind::DistinctCount,
        );
        let tau = problem.absolute_tau(0.01);
        let config = SearchConfig {
            max_expansions: 800,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("astar", fd_count), &fd_count, |b, _| {
            b.iter(|| run_search(&problem, tau, &config, SearchAlgorithm::AStar))
        });
        group.bench_with_input(
            BenchmarkId::new("best_first", fd_count),
            &fd_count,
            |b, _| b.iter(|| run_search(&problem, tau, &config, SearchAlgorithm::BestFirst)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_search_vs_fds);
criterion_main!(benches);
