//! End-to-end repair pipeline benchmark (Figures 7/8 workload): Algorithm 1
//! (A* FD search + data repair) at several relative-trust levels, against the
//! unified-cost baseline producing its single repair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rt_baseline::{unified_cost_repair, UnifiedCostConfig};
use rt_bench::workloads::{Workload, WorkloadSpec};
use rt_constraints::DistinctCountWeight;
use rt_core::{
    repair::repair_data_fds_with, RepairProblem, SearchAlgorithm, SearchConfig, WeightKind,
};

fn bench_end_to_end_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7_8_end_to_end");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let workload = Workload::build(&WorkloadSpec {
        tuples: 500,
        attributes: 12,
        fd_count: 1,
        lhs_size: 6,
        data_error_rate: 0.01,
        fd_error_rate: 0.5,
        seed: 17,
    });
    let dirty = workload.dirty_instance();
    let dirty_fds = workload.dirty_fds();
    let problem = RepairProblem::with_weight(dirty, dirty_fds, WeightKind::DistinctCount);
    let config = SearchConfig {
        max_expansions: 800,
        ..Default::default()
    };

    for &tau_r in &[0.0f64, 0.3, 1.0] {
        let tau = problem.absolute_tau(tau_r);
        let label = format!("tau_r={}%", (tau_r * 100.0) as usize);
        group.bench_with_input(
            BenchmarkId::new("relative_trust", &label),
            &tau,
            |b, &tau| {
                b.iter(|| repair_data_fds_with(&problem, tau, &config, SearchAlgorithm::AStar, 17))
            },
        );
    }

    let weight = DistinctCountWeight::new(dirty);
    group.bench_function("unified_cost_baseline", |b| {
        b.iter(|| unified_cost_repair(dirty, dirty_fds, &weight, &UnifiedCostConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end_repair);
criterion_main!(benches);
