//! Micro-benchmarks of the substrates the repair algorithms are built on:
//! conflict-graph construction, vertex cover, difference-set filtering,
//! data repair (Algorithm 4) and FD discovery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rt_bench::workloads::{Workload, WorkloadSpec};
use rt_constraints::{discover_fds, ConflictGraph, DiscoveryConfig};
use rt_core::data_repair::repair_data;
use rt_graph::{
    approx_vertex_cover, approx_vertex_cover_with, greedy_degree_vertex_cover,
    matching_vertex_cover,
};
use rt_par::Parallelism;

fn bench_conflict_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_conflict_graph");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &tuples in &[500usize, 1000] {
        let workload = Workload::build(&WorkloadSpec {
            tuples,
            attributes: 12,
            fd_count: 1,
            lhs_size: 6,
            data_error_rate: 0.01,
            fd_error_rate: 0.5,
            seed: 3,
        });
        group.bench_with_input(BenchmarkId::new("build", tuples), &tuples, |b, _| {
            b.iter(|| ConflictGraph::build(workload.dirty_instance(), workload.dirty_fds()))
        });
        group.bench_with_input(
            BenchmarkId::new("build_parallel", tuples),
            &tuples,
            |b, _| {
                b.iter(|| {
                    ConflictGraph::build_with(
                        workload.dirty_instance(),
                        workload.dirty_fds(),
                        Parallelism::Auto,
                    )
                })
            },
        );
        let cg = ConflictGraph::build(workload.dirty_instance(), workload.dirty_fds());
        group.bench_with_input(
            BenchmarkId::new("subgraph_filter", tuples),
            &tuples,
            |b, _| b.iter(|| cg.subgraph_for(workload.dirty_fds())),
        );
    }
    group.finish();
}

fn bench_vertex_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_vertex_cover");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let workload = Workload::build(&WorkloadSpec {
        tuples: 2000,
        attributes: 12,
        fd_count: 1,
        lhs_size: 6,
        data_error_rate: 0.01,
        fd_error_rate: 0.5,
        seed: 3,
    });
    let graph = ConflictGraph::build(workload.dirty_instance(), workload.dirty_fds()).to_graph();
    group.bench_function("matching", |b| b.iter(|| matching_vertex_cover(&graph)));
    group.bench_function("greedy_degree", |b| {
        b.iter(|| greedy_degree_vertex_cover(&graph))
    });
    group.bench_function("hybrid", |b| b.iter(|| approx_vertex_cover(&graph)));
    group.bench_function("hybrid_parallel", |b| {
        b.iter(|| approx_vertex_cover_with(&graph, Parallelism::Auto))
    });
    group.finish();
}

fn bench_data_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_data_repair");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &tuples in &[500usize, 1000] {
        let workload = Workload::build(&WorkloadSpec {
            tuples,
            attributes: 12,
            fd_count: 1,
            lhs_size: 6,
            data_error_rate: 0.01,
            fd_error_rate: 0.0,
            seed: 5,
        });
        group.bench_with_input(BenchmarkId::new("algorithm4", tuples), &tuples, |b, _| {
            b.iter(|| repair_data(workload.dirty_instance(), workload.dirty_fds(), 1))
        });
    }
    group.finish();
}

fn bench_fd_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_fd_discovery");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let workload = Workload::build(&WorkloadSpec {
        tuples: 500,
        attributes: 8,
        fd_count: 1,
        lhs_size: 3,
        data_error_rate: 0.0,
        fd_error_rate: 0.0,
        seed: 7,
    });
    let config = DiscoveryConfig {
        max_lhs_size: 3,
        ..Default::default()
    };
    group.bench_function("levelwise_lhs3", |b| {
        b.iter(|| discover_fds(&workload.truth.clean, &config))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_conflict_graph,
    bench_vertex_cover,
    bench_data_repair,
    bench_fd_discovery
);
criterion_main!(benches);
