//! Minimal JSON serialization for experiment rows.
//!
//! The build environment cannot fetch `serde`/`serde_json`, and the only
//! JSON the workspace ever produces is flat experiment-result rows (numbers,
//! strings, booleans, options and vectors thereof). This module provides
//! exactly that: a [`ToJson`] trait with primitive impls and the
//! [`crate::impl_to_json`] macro deriving an object serializer for a
//! named-field struct.

/// Values that can render themselves as a JSON fragment.
pub trait ToJson {
    /// Appends this value's JSON rendering to `out`.
    fn write_json(&self, out: &mut String);

    /// Convenience: the value as a standalone JSON string.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

macro_rules! json_via_display {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

json_via_display!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            // JSON has no NaN/Infinity literal.
            out.push_str("null");
        }
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        out.push('"');
        for c in self.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        self.as_str().write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n ");
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (*self).write_json(out);
    }
}

/// Implements [`ToJson`] for a named-field struct, rendering it as a JSON
/// object with the field names as keys.
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn write_json(&self, out: &mut String) {
                out.push('{');
                let mut first = true;
                $(
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    let _ = first;
                    out.push('"');
                    out.push_str(stringify!($field));
                    out.push_str("\": ");
                    $crate::json::ToJson::write_json(&self.$field, out);
                )+
                out.push('}');
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(1usize.to_json(), "1");
        assert_eq!((-2i64).to_json(), "-2");
        assert_eq!(0.5f64.to_json(), "0.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(true.to_json(), "true");
        assert_eq!("a\"b\\c\n".to_json(), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(Some(3usize).to_json(), "3");
        assert_eq!(Option::<usize>::None.to_json(), "null");
    }

    #[test]
    fn vectors_and_structs_render() {
        struct Row {
            x: usize,
            y: f64,
            label: String,
        }
        impl_to_json!(Row { x, y, label });
        let rows = vec![
            Row {
                x: 1,
                y: 0.5,
                label: "a".to_string(),
            },
            Row {
                x: 2,
                y: 0.25,
                label: "b".to_string(),
            },
        ];
        let json = rows.to_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"x\": 1"));
        assert!(json.contains("\"y\": 0.25"));
        assert!(json.contains("\"label\": \"b\""));
    }
}
