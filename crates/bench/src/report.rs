//! Rendering experiment results as aligned text tables and JSON reports.

use crate::json::ToJson;
use std::path::PathBuf;

/// Renders a simple aligned table (header + rows) for terminal output.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{:width$}",
                    c,
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

/// Directory where JSON experiment reports are written
/// (`target/experiments/`, created on demand).
pub fn report_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("target")
        .join("experiments");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Serializes an experiment's rows to `target/experiments/<name>.json`.
/// Returns the path on success.
pub fn write_json_report<T: ToJson + ?Sized>(name: &str, rows: &T) -> Option<PathBuf> {
    let path = report_dir().join(format!("{name}.json"));
    std::fs::write(&path, rows.to_json()).ok()?;
    Some(path)
}

/// Formats a float with 3 decimal places (quality scores).
pub fn fmt_score(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a duration in seconds with 3 decimal places.
pub fn fmt_secs(secs: f64) -> String {
    format!("{secs:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let header = ["x", "long header", "y"];
        let rows = vec![
            vec!["1".to_string(), "a".to_string(), "0.5".to_string()],
            vec!["100".to_string(), "bbb".to_string(), "0.25".to_string()],
        ];
        let table = render_table(&header, &rows);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long header"));
        assert!(lines[2].starts_with("1 "));
        assert!(lines[3].starts_with("100"));
    }

    #[test]
    fn json_report_round_trips() {
        struct Row {
            x: usize,
            y: f64,
        }
        crate::impl_to_json!(Row { x, y });
        let rows = vec![Row { x: 1, y: 0.5 }, Row { x: 2, y: 0.25 }];
        let path = write_json_report("unit_test_report", &rows).expect("report written");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("0.5"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_score(0.12345), "0.123");
        assert_eq!(fmt_secs(1.5), "1.500");
    }
}
