//! Figure 11: search runtime as the number of FDs grows
//! (A*-Repair vs Best-First-Repair, τ_r = 1%).

use rt_bench::experiments::scalability_fds;
use rt_bench::{render_table, write_json_report, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("[exp_scal_fds] scale = {scale:?}");
    let rows = scalability_fds(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.fds.to_string(),
                r.algorithm.clone(),
                format!("{:.3}", r.seconds),
                r.states_visited.to_string(),
                if r.truncated {
                    "yes (cap hit)".into()
                } else {
                    "no".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["FDs", "algorithm", "seconds", "visited states", "truncated"],
            &table
        )
    );
    if let Some(path) = write_json_report("figure11_scalability_fds", &rows) {
        eprintln!("wrote {}", path.display());
    }
}
