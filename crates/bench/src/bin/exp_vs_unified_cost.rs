//! Figure 8: the best quality achievable by the relative-trust approach
//! versus the unified-cost baseline, per error mix.

use rt_bench::experiments::versus_unified_cost;
use rt_bench::{render_table, write_json_report, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("[exp_vs_unified_cost] scale = {scale:?}");
    let rows = versus_unified_cost(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.clone(),
                format!("{:.0}%", r.fd_error_rate * 100.0),
                format!("{:.0}%", r.data_error_rate * 100.0),
                format!("{:.2}", r.fd_precision),
                format!("{:.2}", r.fd_recall),
                format!("{:.2}", r.data_precision),
                format!("{:.2}", r.data_recall),
                format!("{:.3}", r.combined_f),
                r.best_tau_r
                    .map(|t| format!("{:.0}%", t * 100.0))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Algorithm",
                "FD err",
                "Data err",
                "FD prec",
                "FD rec",
                "Data prec",
                "Data rec",
                "Combined F",
                "best tau_r"
            ],
            &table
        )
    );
    if let Some(path) = write_json_report("figure8_vs_unified_cost", &rows) {
        eprintln!("wrote {}", path.display());
    }
}
