//! Figure 13: generating all repairs for a range of relative-trust values —
//! Range-Repair (Algorithm 6) vs Sampling-Repair.

use rt_bench::experiments::multi_repair_comparison;
use rt_bench::{render_table, write_json_report, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("[exp_multi_repairs] scale = {scale:?}");
    let rows = multi_repair_comparison(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", r.max_tau_r * 100.0),
                r.algorithm.clone(),
                format!("{:.3}", r.seconds),
                r.repairs_found.to_string(),
                r.states_visited.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "max tau_r",
                "algorithm",
                "seconds",
                "repairs found",
                "visited states"
            ],
            &table
        )
    );
    if let Some(path) = write_json_report("figure13_multi_repairs", &rows) {
        eprintln!("wrote {}", path.display());
    }
}
