//! Wall-clock speedup of the parallel execution layer over the serial path,
//! stage by stage, on a single generated workload.
//!
//! Every stage is run with `Parallelism::Serial` and with the requested
//! thread count (default: all cores) and its outputs are asserted
//! bit-identical — the layer's hard invariant — before the timings are
//! reported. Usage:
//!
//! ```text
//! exp_par_speedup [--scale smoke|default|paper] [--threads auto|serial|N]
//! ```

use rt_bench::workloads::{Scale, Workload, WorkloadSpec};
use rt_bench::{impl_to_json, render_table, write_json_report};
use rt_constraints::ConflictGraph;
use rt_core::data_repair::repair_data_with_cover_par;
use rt_core::{sampling_search, Parallelism, RepairProblem, SearchConfig, WeightKind};
use rt_graph::approx_vertex_cover_with;
use std::time::Instant;

/// One stage's serial-vs-parallel measurement.
struct SpeedupRow {
    stage: String,
    serial_seconds: f64,
    parallel_seconds: f64,
    speedup: f64,
    identical: bool,
}

impl_to_json!(SpeedupRow {
    stage,
    serial_seconds,
    parallel_seconds,
    speedup,
    identical
});

/// Times `f` under both settings and checks the outputs match.
fn measure<T: PartialEq>(
    stage: &str,
    par: Parallelism,
    f: impl Fn(Parallelism) -> T,
) -> SpeedupRow {
    // Untimed warm-up so allocator and page-cache effects don't skew the
    // serial (first) measurement.
    let _ = f(Parallelism::Serial);
    let start = Instant::now();
    let serial_out = f(Parallelism::Serial);
    let serial_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let parallel_out = f(par);
    let parallel_seconds = start.elapsed().as_secs_f64();
    SpeedupRow {
        stage: stage.to_string(),
        serial_seconds,
        parallel_seconds,
        speedup: serial_seconds / parallel_seconds.max(1e-12),
        identical: serial_out == parallel_out,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let par = args
        .windows(2)
        .find(|w| w[0] == "--threads")
        .map(|w| Parallelism::parse(&w[1]).expect("valid --threads"))
        .unwrap_or(Parallelism::Auto);
    eprintln!("[exp_par_speedup] scale = {scale:?}, parallel setting = {par}");

    // A conflict-heavy workload: one weakened 6-attribute FD over 5k tuples
    // (paper-scale conflict graphs at Default scale).
    let workload = Workload::build(&WorkloadSpec {
        tuples: scale.tuples(5000),
        attributes: 12,
        fd_count: 1,
        lhs_size: 6,
        data_error_rate: 0.01,
        fd_error_rate: 0.5,
        seed: 3,
    });
    let instance = workload.dirty_instance();
    let fds = workload.dirty_fds();

    let mut rows = Vec::new();

    rows.push(measure("conflict_graph_build", par, |p| {
        ConflictGraph::build_with(instance, fds, p)
    }));

    let conflict = ConflictGraph::build(instance, fds);
    let graph = conflict.to_graph();
    rows.push(measure("vertex_cover", par, |p| {
        approx_vertex_cover_with(&graph, p)
    }));

    let cover: Vec<usize> = approx_vertex_cover_with(&graph, par).iter().collect();
    rows.push(measure("data_repair_alg4", par, |p| {
        let out = repair_data_with_cover_par(instance, fds, &cover, 7, p);
        (out.repaired, out.changed_cells)
    }));

    let problem = RepairProblem::with_weight_par(instance, fds, WeightKind::DistinctCount, par);
    let budget = problem.delta_p_original();
    rows.push(measure("tau_sweep_sampling", par, |p| {
        let config = SearchConfig {
            max_expansions: 10_000,
            parallelism: p,
            ..Default::default()
        };
        let out = sampling_search(&problem, 0, budget, (budget / 8).max(1), &config);
        out.repairs
            .iter()
            .map(|r| (r.repair.delta_p, r.tau_range))
            .collect::<Vec<_>>()
    }));

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.stage.clone(),
                format!("{:.4}", r.serial_seconds),
                format!("{:.4}", r.parallel_seconds),
                format!("{:.2}x", r.speedup),
                if r.identical {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["stage", "serial s", "parallel s", "speedup", "identical"],
            &table
        )
    );
    if let Some(path) = write_json_report("parallel_speedup", &rows) {
        eprintln!("wrote {}", path.display());
    }
    assert!(
        rows.iter().all(|r| r.identical),
        "parallel output diverged from serial — determinism invariant broken"
    );
}
