//! Figure 12: search runtime and visited states as the relative trust τ_r
//! varies (1 FD).

use rt_bench::experiments::effect_of_tau;
use rt_bench::{render_table, write_json_report, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("[exp_effect_tau] scale = {scale:?}");
    let rows = effect_of_tau(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", r.tau_r * 100.0),
                r.algorithm.clone(),
                format!("{:.3}", r.seconds),
                r.states_visited.to_string(),
                if r.truncated {
                    "yes".into()
                } else {
                    "no".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "tau_r",
                "algorithm",
                "seconds",
                "visited states",
                "truncated"
            ],
            &table
        )
    );
    if let Some(path) = write_json_report("figure12_effect_of_tau", &rows) {
        eprintln!("wrote {}", path.display());
    }
}
