//! Figure 10: search runtime as the number of schema attributes grows
//! (A*-Repair vs Best-First-Repair, 2 FDs, τ_r = 1%).

use rt_bench::experiments::scalability_attributes;
use rt_bench::{render_table, write_json_report, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("[exp_scal_attrs] scale = {scale:?}");
    let rows = scalability_attributes(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.attributes.to_string(),
                r.algorithm.clone(),
                format!("{:.3}", r.seconds),
                r.states_visited.to_string(),
                if r.truncated {
                    "yes".into()
                } else {
                    "no".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "attributes",
                "algorithm",
                "seconds",
                "visited states",
                "truncated"
            ],
            &table
        )
    );
    if let Some(path) = write_json_report("figure10_scalability_attributes", &rows) {
        eprintln!("wrote {}", path.display());
    }
}
