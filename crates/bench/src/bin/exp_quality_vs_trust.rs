//! Figure 7: repair quality (combined F-score) as a function of the relative
//! trust `τ_r`, for four data/FD error mixes.

use rt_bench::experiments::quality_vs_trust;
use rt_bench::{render_table, write_json_report, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("[exp_quality_vs_trust] scale = {scale:?}");
    let rows = quality_vs_trust(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", r.fd_error_rate * 100.0),
                format!("{:.0}%", r.data_error_rate * 100.0),
                format!("{:.0}%", r.tau_r * 100.0),
                format!("{:.3}", r.data_f),
                format!("{:.3}", r.fd_f),
                format!("{:.3}", r.combined_f),
                r.cells_modified.to_string(),
                r.attrs_appended.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "FD err",
                "Data err",
                "tau_r",
                "Data F",
                "FD F",
                "Combined F",
                "cells",
                "attrs"
            ],
            &table
        )
    );
    if let Some(path) = write_json_report("figure7_quality_vs_trust", &rows) {
        eprintln!("wrote {}", path.display());
    }
}
