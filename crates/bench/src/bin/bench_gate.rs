//! `bench_gate` — deterministic work-metric regression gate for CI.
//!
//! This container has one core and no network, so wall-clock benchmarks are
//! noise. The gate instead counts *work*: A* node expansions, heuristic
//! recursion nodes, conflict-graph builds, cells changed, incremental edge
//! deltas. Every counter is bit-deterministic (the workspace's parallel ≡
//! serial and incremental ≡ rebuild contracts), so any drift is a real
//! behavioural change — improvements re-baseline, regressions fail.
//!
//! ```text
//! bench_gate --out ci/BENCH_smoke.json                    # measure + write
//! bench_gate --out ... --check ci/bench_baseline.json     # + gate against baseline
//! bench_gate --check ci/bench_baseline.json --selftest    # + prove the gate trips
//! bench_gate --check ... --inflate spectrum.states_expanded  # negative test
//! ```
//!
//! Regenerate the baseline after an intentional change with
//! `bench_gate --out ci/bench_baseline.json`.

use rt_bench::{Workload, WorkloadSpec};
use rt_core::{Parallelism, WeightKind};
use rt_datagen::{generate_mutation_stream, MutationStreamConfig};
use rt_engine::json::{self, JsonValue};
use rt_engine::{MutationBatch, RepairEngine, Spectrum};
use std::process::ExitCode;

/// Ordered metric list (order is stable so baselines diff cleanly).
type Metrics = Vec<(String, u64)>;

fn spectrum_signature(s: &Spectrum) -> (usize, usize) {
    let cells: usize = s.repairs().map(|r| r.data_changes()).sum();
    (s.len(), cells)
}

/// Pushes the equality-work counters accumulated since `work::reset()` under
/// the given scenario prefix. These are the counters the dictionary-encoding
/// layer is meant to shrink: bytes hashed and heap allocations spent building
/// equality keys, and `Value`-level comparisons in hot paths.
fn push_work_counters(metrics: &mut Metrics, prefix: &str) {
    let w = rt_relation::work::snapshot();
    metrics.push((format!("{prefix}.key_bytes_hashed"), w.key_bytes_hashed));
    metrics.push((format!("{prefix}.key_allocs"), w.key_allocs));
    metrics.push((format!("{prefix}.value_compares"), w.value_compares));
}

/// Scenario 1: a full spectrum sweep on a fixed-seed workload.
fn measure_spectrum(metrics: &mut Metrics) {
    rt_relation::work::reset();
    let workload = Workload::build(&WorkloadSpec {
        tuples: 160,
        attributes: 10,
        fd_count: 2,
        lhs_size: 3,
        data_error_rate: 0.01,
        fd_error_rate: 0.4,
        seed: 31,
    });
    let engine = workload.engine(Parallelism::Serial, 200_000);
    let spectrum = engine.spectrum().expect("smoke spectrum completes");
    let stats = engine.stats();
    let (points, cells) = spectrum_signature(&spectrum);
    assert_eq!(stats.conflict_graph_builds, 1, "engine invariant violated");
    let m = |k: &str, v: u64| (format!("spectrum.{k}"), v);
    metrics.push(m("states_expanded", stats.states_expanded as u64));
    metrics.push(m("states_generated", stats.states_generated as u64));
    metrics.push(m("heuristic_nodes", stats.heuristic_nodes as u64));
    metrics.push(m("heuristic_cache_hits", stats.heuristic_cache_hits as u64));
    metrics.push(m(
        "heuristic_cache_entries",
        stats.heuristic_cache_entries as u64,
    ));
    metrics.push(m(
        "conflict_graph_builds",
        stats.conflict_graph_builds as u64,
    ));
    metrics.push(m("points", points as u64));
    metrics.push(m("cells_changed", cells as u64));
    push_work_counters(metrics, "spectrum");

    // Dominance-pruned rerun: same workload with pruning enabled must record
    // the bit-identical spectrum while skipping dominated children. (After
    // `push_work_counters` so the rerun doesn't pollute the work metrics.)
    let dominant = RepairEngine::builder(
        workload.dirty_instance().clone(),
        workload.dirty_fds().clone(),
    )
    .weight(WeightKind::DistinctCount)
    .parallelism(Parallelism::Serial)
    .max_expansions(200_000)
    .seed(workload.spec.seed)
    .dominance_pruning(true)
    .build()
    .expect("pruned engine builds");
    let pruned_spectrum = dominant.spectrum().expect("pruned spectrum completes");
    assert!(
        spectrum.bit_identical(&pruned_spectrum),
        "spectrum: dominance pruning changed the recorded spectrum"
    );
    metrics.push(m(
        "dominance_pruned",
        dominant.stats().dominance_pruned as u64,
    ));
}

/// Scenario 2: a live mutation stream replayed against one engine session,
/// verified bit-identical to a fresh rebuild at the end.
fn measure_mutations(metrics: &mut Metrics) {
    rt_relation::work::reset();
    let workload = Workload::build(&WorkloadSpec {
        tuples: 120,
        attributes: 8,
        fd_count: 2,
        lhs_size: 3,
        data_error_rate: 0.01,
        fd_error_rate: 0.3,
        seed: 7,
    });
    let mut engine = RepairEngine::builder(
        workload.dirty_instance().clone(),
        workload.dirty_fds().clone(),
    )
    .weight(WeightKind::DistinctCount)
    .parallelism(Parallelism::Serial)
    .max_expansions(200_000)
    .seed(workload.spec.seed)
    .build()
    .expect("gate workload builds");

    engine.spectrum().expect("pre-mutation spectrum completes");
    let ops = generate_mutation_stream(
        workload.dirty_instance(),
        workload.dirty_fds(),
        &MutationStreamConfig {
            ops: 15,
            fd_edit_weight: 1,
            fresh_value_rate: 0.5,
            seed: 11,
            ..Default::default()
        },
    );
    for op in &ops {
        engine
            .apply(&MutationBatch::new().push(op.clone()))
            .expect("generated stream applies cleanly");
    }
    let after = engine.spectrum().expect("post-mutation spectrum completes");
    let stats = engine.stats();
    assert_eq!(stats.conflict_graph_builds, 1, "engine invariant violated");
    assert_eq!(stats.graph_rebuild_avoided, ops.len());
    // Snapshot the equality-work counters *before* the fresh-rebuild
    // verification below: the gate measures the incremental session, not the
    // gate's own cross-check.
    let mut work_metrics = Metrics::new();
    push_work_counters(&mut work_metrics, "mutations");

    // Hard equivalence gate: the incremental session must be bit-identical
    // to a fresh engine on the mutated inputs.
    let fresh = RepairEngine::builder(
        engine.problem().instance().clone(),
        engine.problem().sigma().clone(),
    )
    .weight(WeightKind::DistinctCount)
    .parallelism(Parallelism::Serial)
    .max_expansions(200_000)
    .seed(workload.spec.seed)
    .build()
    .expect("fresh engine builds");
    let fresh_spectrum = fresh.spectrum().expect("fresh spectrum completes");
    assert!(
        after.bit_identical(&fresh_spectrum),
        "incremental engine diverged from a fresh rebuild"
    );

    let (points, cells) = spectrum_signature(&after);
    let m = |k: &str, v: u64| (format!("mutations.{k}"), v);
    metrics.push(m("states_expanded", stats.states_expanded as u64));
    metrics.push(m("heuristic_nodes", stats.heuristic_nodes as u64));
    metrics.push(m("heuristic_cache_hits", stats.heuristic_cache_hits as u64));
    metrics.push(m(
        "heuristic_cache_entries",
        stats.heuristic_cache_entries as u64,
    ));
    metrics.push(m(
        "conflict_graph_builds",
        stats.conflict_graph_builds as u64,
    ));
    metrics.push(m(
        "graph_rebuild_avoided",
        stats.graph_rebuild_avoided as u64,
    ));
    metrics.push(m("edges_added", stats.edges_added as u64));
    metrics.push(m("edges_removed", stats.edges_removed as u64));
    metrics.push(m("components_dirtied", stats.components_dirtied as u64));
    metrics.push(m("points", points as u64));
    metrics.push(m("cells_changed", cells as u64));
    metrics.extend(work_metrics);
}

/// Scenario 3: the typed CSV bulk load against the legacy value-path
/// reader, on the bundled hospital fixture. The headline property is a
/// hard assert, not just a gated counter: the encoded path builds **zero**
/// equality keys (`key_allocs == 0`) where the value path allocates one
/// per string cell.
fn measure_csv_load(metrics: &mut Metrics) {
    use rt_scenarios::HOSPITAL_CSV;

    rt_relation::work::reset();
    let legacy = rt_relation::csv::read_instance("hospital", HOSPITAL_CSV.as_bytes())
        .expect("fixture parses on the legacy path");
    let w = rt_relation::work::snapshot();
    metrics.push(("csv_load.value_key_allocs".into(), w.key_allocs));
    metrics.push(("csv_load.value_key_bytes".into(), w.key_bytes_hashed));

    rt_relation::work::reset();
    let typed = rt_io::read_instance(HOSPITAL_CSV.as_bytes(), &rt_io::CsvOptions::csv())
        .expect("fixture parses on the typed path");
    let w = rt_relation::work::snapshot();
    assert_eq!(
        w.key_allocs, 0,
        "the encoded CSV load path must not build equality keys"
    );
    assert_eq!(typed.instance.len(), legacy.len());
    metrics.push(("csv_load.encoded_key_allocs".into(), w.key_allocs));
    metrics.push(("csv_load.encoded_key_bytes".into(), w.key_bytes_hashed));
    metrics.push(("csv_load.rows".into(), typed.instance.len() as u64));
}

/// How many spectrum points the catalog-scenario gate materializes per
/// sweep. A full τ-sweep down to `τ = 0` forces the deepest FD searches
/// and can take minutes per scenario; the sweep is lazy and the prefix is
/// where production sessions live (trust the constraints first), so the
/// gate pins the first few points — deterministic, bounded, and still
/// exercising the whole pipeline.
const SCENARIO_SWEEP_POINTS: usize = 3;

/// Materializes the first [`SCENARIO_SWEEP_POINTS`] points of an engine's
/// τ-sweep as a comparable `Spectrum` (the stats field is excluded from
/// `bit_identical`, so a default suffices).
fn sweep_prefix(engine: &RepairEngine, label: &str) -> Spectrum {
    let mut points = Vec::new();
    for point in engine
        .sweep(0..=engine.delta_p_original())
        .take(SCENARIO_SWEEP_POINTS)
    {
        points.push(point.unwrap_or_else(|e| panic!("{label}: sweep failed: {e}")));
    }
    Spectrum {
        points,
        search_stats: Default::default(),
    }
}

/// Scenarios 4..: every catalog workload end to end — build (typed load or
/// seeded generation + injection), a bounded prefix of the τ-sweep, a
/// short live mutation stream, and the hard incremental ≡ rebuild
/// bit-identity assert on the post-mutation prefix.
fn measure_catalog_scenario(metrics: &mut Metrics, name: &str) {
    use rt_scenarios::ScenarioConfig;

    rt_relation::work::reset();
    let scenario =
        rt_scenarios::build(name, &ScenarioConfig::default()).expect("catalog scenario builds");
    let mut engine = RepairEngine::builder(scenario.dirty.clone(), scenario.dirty_fds.clone())
        .weight(WeightKind::DistinctCount)
        .parallelism(Parallelism::Serial)
        .max_expansions(400_000)
        .seed(17)
        .build()
        .expect("scenario engine builds");
    let edge_count = engine.problem().conflict_graph().edge_count();
    let before = sweep_prefix(&engine, name);

    let ops = generate_mutation_stream(
        engine.problem().instance(),
        engine.problem().sigma(),
        &MutationStreamConfig {
            ops: 6,
            fd_edit_weight: 0,
            fresh_value_rate: 0.4,
            seed: 23,
            ..Default::default()
        },
    );
    for op in &ops {
        engine
            .apply(&MutationBatch::new().push(op.clone()))
            .expect("scenario mutation stream applies cleanly");
    }
    let after = sweep_prefix(&engine, name);
    let stats = engine.stats();
    assert_eq!(stats.conflict_graph_builds, 1, "engine invariant violated");

    // Snapshot before the fresh-rebuild cross-check: the gate measures the
    // scenario, not its own verification.
    let w = rt_relation::work::snapshot();

    let fresh = RepairEngine::builder(
        engine.problem().instance().clone(),
        engine.problem().sigma().clone(),
    )
    .weight(WeightKind::DistinctCount)
    .parallelism(Parallelism::Serial)
    .max_expansions(400_000)
    .seed(17)
    .build()
    .expect("fresh scenario engine builds");
    assert!(
        after.bit_identical(&sweep_prefix(&fresh, name)),
        "scenario `{name}`: incremental engine diverged from a fresh rebuild"
    );

    // Dominance-pruned rerun on the pre-mutation inputs: enabling the
    // pruning must skip children without changing one bit of the recorded
    // spectrum prefix.
    let dominant = RepairEngine::builder(scenario.dirty.clone(), scenario.dirty_fds.clone())
        .weight(WeightKind::DistinctCount)
        .parallelism(Parallelism::Serial)
        .max_expansions(400_000)
        .seed(17)
        .dominance_pruning(true)
        .build()
        .expect("dominance-pruned scenario engine builds");
    assert!(
        before.bit_identical(&sweep_prefix(&dominant, name)),
        "scenario `{name}`: dominance pruning changed the recorded spectrum"
    );

    let (points, cells) = spectrum_signature(&before);
    let m = |k: &str, v: u64| (format!("scenario.{name}.{k}"), v);
    metrics.push(m("conflict_edges", edge_count as u64));
    metrics.push(m("states_expanded", stats.states_expanded as u64));
    metrics.push(m("heuristic_nodes", stats.heuristic_nodes as u64));
    metrics.push(m("heuristic_cache_hits", stats.heuristic_cache_hits as u64));
    metrics.push(m(
        "heuristic_cache_entries",
        stats.heuristic_cache_entries as u64,
    ));
    metrics.push(m(
        "dominance_pruned",
        dominant.stats().dominance_pruned as u64,
    ));
    metrics.push(m("points", points as u64));
    metrics.push(m("cells_changed", cells as u64));
    metrics.push(m("edges_added", stats.edges_added as u64));
    metrics.push(m("edges_removed", stats.edges_removed as u64));
    metrics.push(m("key_bytes_hashed", w.key_bytes_hashed));
    metrics.push(m("key_allocs", w.key_allocs));
    metrics.push(m("value_compares", w.value_compares));
}

/// Rows per encode chunk for the warehouse ingestion tiers. The chunked
/// loader's contract makes this the resident-text bound: at any moment at
/// most `WAREHOUSE_CHUNK_ROWS × arity` undecoded cells are held, whatever
/// the file size.
const WAREHOUSE_CHUNK_ROWS: usize = 8192;

/// The warehouse row-count tiers. Per-row work must stay flat across two
/// orders of magnitude — that is the scale-up claim, stated as counters.
const WAREHOUSE_TIERS: [(usize, &str); 3] = [(10_000, "10k"), (100_000, "100k"), (1_000_000, "1m")];

/// Scenario: the memory-bounded scale-up path end to end — stream a seeded
/// warehouse CSV from disk in bounded chunks, build the engine through the
/// sharded conflict-graph path, and sweep the gated prefix — at 10k, 100k
/// and 1M rows. The gate is *per-row* work: bytes hashed per row and the
/// peak resident-cell estimate must not grow with the tier (hard asserts,
/// on top of the baseline). At the smallest tier the sharded engine is also
/// hard-checked bit-identical to a monolithic build.
fn measure_warehouse(metrics: &mut Metrics) {
    use rt_core::ShardPlan;
    use rt_engine::ShardRows;
    use rt_scenarios::{gen, WAREHOUSE_ERRORS};

    // (tier label, milli-units per row) series for the flatness asserts.
    let mut per_row_bytes: Vec<(&str, u64)> = Vec::new();
    let mut peaks: Vec<(&str, u64)> = Vec::new();
    for (rows, label) in WAREHOUSE_TIERS {
        let path = std::env::temp_dir().join(format!(
            "rt-bench-warehouse-{rows}-{}.csv",
            std::process::id()
        ));
        {
            let file = std::fs::File::create(&path).expect("temp CSV creates");
            let mut out = std::io::BufWriter::new(file);
            gen::write_warehouse_csv(&mut out, rows, 17, WAREHOUSE_ERRORS)
                .expect("warehouse CSV streams to disk");
        }

        rt_relation::work::reset();
        let report = rt_io::load_path_chunked(
            &path,
            WAREHOUSE_CHUNK_ROWS,
            &rt_io::CsvOptions::csv().relation("warehouse"),
        )
        .expect("warehouse CSV loads chunked");
        std::fs::remove_file(&path).ok();
        let load = rt_relation::work::snapshot();
        assert_eq!(
            load.key_allocs, 0,
            "warehouse.{label}: the chunked load path must not build equality keys"
        );
        // The gauge counts the permanent encoded columns plus the raw text
        // in flight, so the memory bound is "the encoded relation + at most
        // two chunks' worth of cells" (one buffered raw, one mid-flush).
        let peak = rt_relation::work::peak_resident_cells();
        let arity = report.instance.schema().arity();
        assert!(
            peak <= ((rows + 2 * WAREHOUSE_CHUNK_ROWS) * arity) as u64,
            "warehouse.{label}: resident cells exceeded the chunked bound ({peak} cells)"
        );

        let fds = gen::warehouse_fds(report.instance.schema());
        let engine = RepairEngine::builder(report.instance.clone(), fds.clone())
            .weight(WeightKind::DistinctCount)
            .parallelism(Parallelism::Serial)
            .max_expansions(400_000)
            .seed(17)
            .shard_rows(ShardRows::Threshold(0))
            .build()
            .expect("warehouse engine builds sharded");
        let stats = engine.stats();
        let plan_shards =
            ShardPlan::compute(engine.problem().instance(), engine.problem().sigma()).shard_count();
        // The acceptance invariant: one build per shard, never a monolithic
        // rebuild.
        assert_eq!(
            stats.conflict_graph_builds, plan_shards,
            "warehouse.{label}: sharded build count must equal the shard count"
        );
        assert_eq!(stats.shards, plan_shards, "warehouse.{label}");
        let edge_count = engine.problem().conflict_graph().edge_count();
        let prefix = sweep_prefix(&engine, label);
        let w = rt_relation::work::snapshot();

        // At the cheapest tier, cross-check the whole sharded pipeline
        // against a monolithic build of the same loaded instance.
        if rows == WAREHOUSE_TIERS[0].0 {
            let mono = RepairEngine::builder(report.instance.clone(), fds.clone())
                .weight(WeightKind::DistinctCount)
                .parallelism(Parallelism::Serial)
                .max_expansions(400_000)
                .seed(17)
                .shard_rows(ShardRows::Off)
                .build()
                .expect("warehouse engine builds monolithic");
            assert_eq!(
                engine.problem().conflict_graph(),
                mono.problem().conflict_graph(),
                "warehouse.{label}: sharded conflict graph diverged from monolithic"
            );
            assert!(
                prefix.bit_identical(&sweep_prefix(&mono, label)),
                "warehouse.{label}: sharded sweep diverged from monolithic"
            );
        }

        let bytes_per_row_x1000 = w.key_bytes_hashed * 1000 / rows as u64;
        let peak_per_row_x1000 = peak * 1000 / rows as u64;
        per_row_bytes.push((label, bytes_per_row_x1000));
        peaks.push((label, peak_per_row_x1000));

        let (points, cells) = spectrum_signature(&prefix);
        let m = |k: &str, v: u64| (format!("warehouse.{label}.{k}"), v);
        metrics.push(m("rows", rows as u64));
        metrics.push(m("shards", stats.shards as u64));
        metrics.push(m("conflict_edges", edge_count as u64));
        metrics.push(m("states_expanded", stats.states_expanded as u64));
        metrics.push(m("points", points as u64));
        metrics.push(m("cells_changed", cells as u64));
        metrics.push(m("key_bytes_per_row_x1000", bytes_per_row_x1000));
        metrics.push(m(
            "key_allocs_per_row_x1000",
            w.key_allocs * 1000 / rows as u64,
        ));
        metrics.push(m("peak_resident_cells_per_row_x1000", peak_per_row_x1000));
    }

    // Flatness across two orders of magnitude: per-row hashing and per-row
    // resident peak within 1.5× of the smallest tier. (The baseline gates
    // drift run-over-run; these asserts gate the *shape*.)
    for series in [&per_row_bytes, &peaks] {
        let (base_label, base) = series[0];
        for &(label, v) in &series[1..] {
            assert!(
                v <= base + base / 2,
                "warehouse per-row work grew with scale: {base_label}={base} vs {label}={v} \
                 (milli-units/row)"
            );
        }
    }
}

/// Scenario: the service layer end to end — several named sessions
/// interleaved over one loopback TCP connection, with `max_sessions` low
/// enough to force an LRU eviction mid-run. The driving client is a single
/// thread issuing a fixed request sequence, and the server's idleness
/// clock is logical (a request counter), so every gated counter is exact.
/// The headline property is a hard assert: the post-mutation spectrum that
/// crosses the wire is bit-identical to an in-process engine fed the same
/// CSV text and mutation log.
fn measure_serve(metrics: &mut Metrics) {
    use rt_client::Client;
    use rt_engine::decode_mutation_log;
    use rt_proto::EngineOpts;
    use rt_server::{Server, ServerConfig};

    let config = ServerConfig {
        max_sessions: 2,
        max_connections: 2,
        ..ServerConfig::default()
    };
    let server = Server::bind_tcp_with("127.0.0.1:0", config).expect("loopback bind");
    let addr = server.local_addr().expect("tcp server has an address");
    let worker = std::thread::spawn(move || server.run());
    let client = Client::connect(&addr.to_string()).expect("loopback connect");

    let mut opts = EngineOpts::new(7);
    opts.threads = Parallelism::Serial;

    // Two interleaved sessions on distinct workloads...
    let hospital_text = rt_scenarios::HOSPITAL_CSV;
    let hospital_fds = ["zip->city", "provider_id->hospital_name"];
    let small_text = "A,B,C\n1,1,2\n1,2,2\n2,5,3\n2,5,4\n3,7,4\n";
    let mut s1 = client.create_session("s1", opts).expect("s1 creates");
    let mut s2 = client.create_session("s2", opts).expect("s2 creates");
    s1.load_csv(small_text, false, &["A->B", "C->A"])
        .expect("s1 loads");
    s2.load_csv(hospital_text, false, &hospital_fds)
        .expect("s2 loads");
    let s1_spectrum = s1.spectrum().expect("s1 spectrum");
    let s2_spectrum = s2.spectrum().expect("s2 spectrum");

    // ...a third session evicts the LRU one (s1: s2 was used after it)...
    let mut s3 = client.create_session("s3", opts).expect("s3 creates");
    s3.load_csv("X,Y\n1,1\n1,2\n", false, &["X->Y"])
        .expect("s3 loads");
    s3.spectrum().expect("s3 spectrum");

    // ...and a mutation batch against the surviving hospital session.
    let ops_text = r#"[
        {"op": "update", "row": 3, "attr": "city", "value": "Mobile"},
        {"op": "insert", "rows": [
            [77001, "Bayou City Medical", "1 Main St", "Houston", "TX", 77001,
             "Harris", 7135550100, "AMI-1", "Aspirin at arrival", "Heart Attack", 88.5, 10]
        ]}
    ]"#;
    let (wire_effect, _) = s2.apply_text(ops_text).expect("wire mutation applies");
    let wire_after = s2.spectrum().expect("post-mutation wire spectrum");
    let wire_stats = s2.stats().expect("s2 stats");
    assert_eq!(
        wire_stats.conflict_graph_builds, 1,
        "a wire session must build its conflict graph exactly once"
    );

    // Hard bit-identity gate: in-process twin of s2, same text, same log.
    // The server loads wire text under the fixed relation name "input";
    // the twin must match for the instances to compare bit-identical.
    let report = rt_io::read_instance(
        hospital_text.as_bytes(),
        &rt_io::CsvOptions::csv().relation("input"),
    )
    .expect("hospital fixture parses");
    let schema = report.instance.schema().clone();
    let sigma = rt_constraints::FdSet::parse(&hospital_fds, &schema).expect("hospital FDs parse");
    let mut twin = opts
        .configure(RepairEngine::builder(report.instance, sigma))
        .build()
        .expect("twin engine builds");
    twin.spectrum().expect("twin pre-mutation spectrum");
    let doc = json::parse(ops_text).expect("mutation log parses");
    let decoded = decode_mutation_log(&doc, &schema).expect("mutation log decodes");
    let local_outcome = twin
        .apply(&decoded.into_iter().collect::<MutationBatch>())
        .expect("twin mutation applies");
    assert_eq!(
        wire_effect, local_outcome.effect,
        "wire and in-process mutation effects diverged"
    );
    assert!(
        wire_after.bit_identical(&twin.spectrum().expect("twin post-mutation spectrum")),
        "serve: wire spectrum diverged from the in-process engine"
    );

    let counters = client.server_stats().expect("server counters");
    let lookup = |name: &str| -> u64 {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("server counter `{name}` missing"))
            .1
    };
    assert!(lookup("sessions_evicted") >= 1, "no eviction happened");

    let (s2_points, s2_cells) = spectrum_signature(&wire_after);
    let (s1_points, s1_cells) = spectrum_signature(&s1_spectrum);
    let m = |k: &str, v: u64| (format!("serve.multi_session.{k}"), v);
    metrics.push(m("frames_decoded", lookup("frames_decoded")));
    metrics.push(m("requests_served", lookup("requests_served")));
    metrics.push(m("sessions_created", lookup("sessions_created")));
    metrics.push(m("sessions_evicted", lookup("sessions_evicted")));
    metrics.push(m("states_expanded", wire_stats.states_expanded as u64));
    metrics.push(m(
        "points",
        (s1_points + s2_points + s2_spectrum.len()) as u64,
    ));
    metrics.push(m("cells_changed", (s1_cells + s2_cells) as u64));

    client.shutdown().expect("graceful shutdown");
    worker
        .join()
        .expect("server thread joins")
        .expect("server run succeeds");
}

/// Scenario: crash-safe sessions end to end — load, mutate, snapshot,
/// crash (an armed fault point kills the server before a rotation's
/// rename), restart on the same data dir, restore, sweep. The headline
/// properties are hard asserts: the recovered spectrum is bit-identical to
/// an uninterrupted in-process twin, recovery replays the WAL instead of
/// rebuilding (`conflict_graph_builds == 0`), and every durability counter
/// is exact (the journal is synchronous and the workload is fixed).
fn measure_recover_restart(metrics: &mut Metrics) {
    use rt_client::Client;
    use rt_engine::decode_mutation_log;
    use rt_proto::EngineOpts;
    use rt_server::{FaultPoint, Server, ServerConfig};

    let dir = std::env::temp_dir().join(format!("rt-bench-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let mut opts = EngineOpts::new(7);
    opts.threads = Parallelism::Serial;

    let text = "A,B,C\n1,1,2\n1,2,2\n2,5,3\n2,5,4\n3,7,4\n";
    let fds = ["A->B", "C->A"];
    let ops_snapshotted = r#"[{"op": "update", "row": 1, "attr": "B", "value": 1}]"#;
    let ops_journaled = r#"[{"op": "insert", "rows": [[3, 8, 5]]}]"#;

    // --- First life: load, mutate, rotate, mutate again, crash. ---------
    let server = Server::bind_tcp_with("127.0.0.1:0", config.clone()).expect("loopback bind");
    let addr = server.local_addr().expect("tcp server has an address");
    let handle = server.handle();
    let worker = std::thread::spawn(move || server.run());
    let client = Client::connect(&addr.to_string()).expect("loopback connect");

    let mut session = client
        .create_session("recover", opts)
        .expect("session creates");
    session.load_csv(text, false, &fds).expect("session loads");
    session
        .apply_text(ops_snapshotted)
        .expect("first mutation applies");
    session.snapshot().expect("explicit rotation succeeds");
    session
        .apply_text(ops_journaled)
        .expect("second mutation applies");

    let counters = client.server_stats().expect("server counters");
    let lookup = |counters: &[(String, u64)], name: &str| -> u64 {
        counters
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("server counter `{name}` missing"))
            .1
    };
    // Two rotations: the load_csv baseline and the explicit snapshot.
    let snapshots_written = lookup(&counters, "snapshots_written");
    assert_eq!(snapshots_written, 2, "rotation count drifted");

    // Crash mid-rotation: the rename never lands, the WAL must carry it.
    assert!(handle.arm_fault(FaultPoint::BeforeSnapshotRename));
    assert!(
        session.snapshot().is_err(),
        "the armed fault point must kill the rotation"
    );
    drop(session);
    drop(client);
    worker
        .join()
        .expect("server thread joins")
        .expect("crashed server still returns cleanly");

    // --- Second life: restart on the same dir and recover. --------------
    let server = Server::bind_tcp_with("127.0.0.1:0", config).expect("loopback rebind");
    let addr = server.local_addr().expect("tcp server has an address");
    let worker = std::thread::spawn(move || server.run());
    let client = Client::connect(&addr.to_string()).expect("loopback reconnect");

    let (mut restored, _summary, replayed) =
        client.restore_session("recover").expect("session restores");
    let wire = restored.spectrum().expect("recovered spectrum");
    let stats = restored.stats().expect("recovered stats");
    assert_eq!(
        stats.conflict_graph_builds, 0,
        "recovery must replay, never rebuild"
    );

    // Hard bit-identity gate: an uninterrupted twin fed the same text and
    // the same acknowledged mutation log.
    let report = rt_io::read_instance(text.as_bytes(), &rt_io::CsvOptions::csv().relation("input"))
        .expect("fixture parses");
    let schema = report.instance.schema().clone();
    let sigma = rt_constraints::FdSet::parse(&fds, &schema).expect("FDs parse");
    let mut twin = opts
        .configure(RepairEngine::builder(report.instance, sigma))
        .build()
        .expect("twin engine builds");
    for ops_text in [ops_snapshotted, ops_journaled] {
        let doc = json::parse(ops_text).expect("mutation log parses");
        let decoded = decode_mutation_log(&doc, &schema).expect("mutation log decodes");
        twin.apply(&decoded.into_iter().collect::<MutationBatch>())
            .expect("twin mutation applies");
    }
    assert!(
        wire.bit_identical(&twin.spectrum().expect("twin spectrum")),
        "recover.restart: recovered spectrum diverged from the uninterrupted twin"
    );

    let counters = client.server_stats().expect("server counters");
    assert_eq!(lookup(&counters, "recovery_failures"), 0);

    let (points, cells) = spectrum_signature(&wire);
    let m = |k: &str, v: u64| (format!("recover.restart.{k}"), v);
    metrics.push(m("snapshots_written", snapshots_written));
    metrics.push(m(
        "wal_records_replayed",
        lookup(&counters, "wal_records_replayed"),
    ));
    metrics.push(m(
        "sessions_recovered",
        lookup(&counters, "sessions_recovered"),
    ));
    metrics.push(m("wal_tail_replayed", replayed as u64));
    metrics.push(m(
        "conflict_graph_builds",
        stats.conflict_graph_builds as u64,
    ));
    metrics.push(m("points", points as u64));
    metrics.push(m("cells_changed", cells as u64));

    client.shutdown().expect("graceful shutdown");
    worker
        .join()
        .expect("server thread joins")
        .expect("server run succeeds");
    let _ = std::fs::remove_dir_all(&dir);
}

fn measure() -> Metrics {
    let mut metrics = Metrics::new();
    measure_spectrum(&mut metrics);
    measure_mutations(&mut metrics);
    measure_csv_load(&mut metrics);
    for name in rt_scenarios::SCENARIO_NAMES {
        measure_catalog_scenario(&mut metrics, name);
    }
    measure_warehouse(&mut metrics);
    measure_serve(&mut metrics);
    measure_recover_restart(&mut metrics);
    metrics
}

fn render(metrics: &Metrics) -> String {
    use rt_bench::json::ToJson;
    let mut out = String::from("{\"format\": 1,\n \"metrics\": {\n");
    for (i, (k, v)) in metrics.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  ");
        k.write_json(&mut out);
        out.push_str(": ");
        v.write_json(&mut out);
    }
    out.push_str("\n }}\n");
    out
}

fn parse_metrics(text: &str) -> Result<Metrics, String> {
    let doc = json::parse(text)?;
    let fields = doc
        .get("metrics")
        .and_then(JsonValue::as_object)
        .ok_or("baseline has no \"metrics\" object")?;
    fields
        .iter()
        .map(|(k, v)| {
            v.as_usize()
                .map(|n| (k.clone(), n as u64))
                .ok_or(format!("metric {k} is not a non-negative integer"))
        })
        .collect()
}

/// Gate rule: a counter above its baseline is a work regression → fail.
/// Below baseline (an improvement) or metrics only on one side → warn, so
/// intentional changes re-baseline explicitly.
fn check(current: &Metrics, baseline: &Metrics) -> Result<Vec<String>, Vec<String>> {
    let mut warnings = Vec::new();
    let mut failures = Vec::new();
    for (key, base) in baseline {
        match current.iter().find(|(k, _)| k == key) {
            None => failures.push(format!("metric `{key}` disappeared (baseline {base})")),
            Some((_, cur)) if cur > base => failures.push(format!(
                "work regression: `{key}` rose {base} -> {cur} (+{:.1}%)",
                ((*cur as f64 / *base as f64) - 1.0) * 100.0
            )),
            Some((_, cur)) if cur < base => warnings.push(format!(
                "improvement: `{key}` fell {base} -> {cur}; re-baseline to lock it in"
            )),
            _ => {}
        }
    }
    for (key, _) in current {
        if !baseline.iter().any(|(k, _)| k == key) {
            warnings.push(format!("new metric `{key}` not in baseline; re-baseline"));
        }
    }
    if failures.is_empty() {
        Ok(warnings)
    } else {
        Err(failures)
    }
}

/// Proves the gate actually trips: inflating any counter by 10% (rounding
/// up) against the same metrics as baseline must fail the check.
fn selftest(metrics: &Metrics) -> Result<(), String> {
    if check(metrics, metrics).is_err() {
        return Err("identical metrics must pass the gate".to_string());
    }
    for i in 0..metrics.len() {
        let mut inflated = metrics.clone();
        inflated[i].1 += (inflated[i].1 / 10).max(1);
        if check(&inflated, metrics).is_ok() {
            return Err(format!(
                "inflating `{}` was not caught by the gate",
                metrics[i].0
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut inflate: Option<String> = None;
    let mut run_selftest = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned();
            }
            "--check" => {
                i += 1;
                check_path = args.get(i).cloned();
            }
            "--inflate" => {
                i += 1;
                inflate = args.get(i).cloned();
            }
            "--selftest" => run_selftest = true,
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: bench_gate [--out <path>] [--check <baseline>] [--selftest] \
                     [--inflate <metric>]"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    println!("bench_gate: measuring deterministic work counters...");
    let mut metrics = measure();
    for (k, v) in &metrics {
        println!("  {k:<40} {v}");
    }

    if let Some(path) = &out_path {
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir).ok();
        }
        if let Err(e) = std::fs::write(path, render(&metrics)) {
            eprintln!("bench_gate: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench_gate: wrote {path}");
    }

    if let Some(metric) = &inflate {
        match metrics.iter_mut().find(|(k, _)| k == metric) {
            Some(entry) => {
                entry.1 += (entry.1 / 10).max(1);
                println!(
                    "bench_gate: artificially inflated `{metric}` to {}",
                    entry.1
                );
            }
            None => {
                eprintln!("bench_gate: unknown metric `{metric}`");
                return ExitCode::FAILURE;
            }
        }
    }

    if run_selftest {
        match selftest(&metrics) {
            Ok(()) => println!("bench_gate: selftest OK (every inflated counter trips the gate)"),
            Err(e) => {
                eprintln!("bench_gate: selftest FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &check_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_gate: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match parse_metrics(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_gate: bad baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check(&metrics, &baseline) {
            Ok(warnings) => {
                for w in &warnings {
                    println!("bench_gate: note: {w}");
                }
                println!("bench_gate: OK against {path}");
            }
            Err(failures) => {
                for f in &failures {
                    eprintln!("bench_gate: FAIL: {f}");
                }
                eprintln!(
                    "bench_gate: counters regressed; if intentional, re-baseline with \
                     `cargo run --release -p rt-bench --bin bench_gate -- --out {path}`"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
