//! Experiment drivers — one function per table/figure of the paper.
//!
//! Every driver returns plain serializable rows so the `exp_*` binaries can
//! print them as tables and dump them as JSON, and the Criterion benches can
//! reuse the same workload construction.

use crate::workloads::{Scale, Workload, WorkloadSpec};
use rt_baseline::UnifiedCostConfig;
use rt_core::{Parallelism, RangeSearch, RepairProblem, SearchAlgorithm, SearchConfig, WeightKind};
use rt_datagen::evaluate_repair;
use rt_par::par_map_coarse;

/// The four error-rate mixes of Figures 7 and 8: `(fd_error, data_error)`.
pub const ERROR_MIXES: [(f64, f64); 4] = [(0.8, 0.0), (0.5, 0.05), (0.3, 0.05), (0.0, 0.05)];

crate::impl_to_json!(QualityRow {
    fd_error_rate,
    data_error_rate,
    tau_r,
    data_f,
    fd_f,
    combined_f,
    cells_modified,
    attrs_appended,
});
crate::impl_to_json!(ComparisonRow {
    algorithm,
    fd_error_rate,
    data_error_rate,
    fd_precision,
    fd_recall,
    data_precision,
    data_recall,
    combined_f,
    best_tau_r,
});
crate::impl_to_json!(PerfRow {
    algorithm,
    tuples,
    attributes,
    fds,
    tau_r,
    seconds,
    states_visited,
    truncated,
});
crate::impl_to_json!(MultiRepairRow {
    algorithm,
    max_tau_r,
    seconds,
    repairs_found,
    states_visited
});

// ---------------------------------------------------------------------------
// Figure 7: repair quality vs. relative trust
// ---------------------------------------------------------------------------

/// One point of Figure 7.
#[derive(Debug, Clone)]
pub struct QualityRow {
    /// Fraction of LHS attributes removed from the clean FD.
    pub fd_error_rate: f64,
    /// Fraction of corrupted cells.
    pub data_error_rate: f64,
    /// Relative trust (fraction of `δ_P(Σ_d, I_d)` allowed as cell changes).
    pub tau_r: f64,
    /// Data F-score.
    pub data_f: f64,
    /// FD F-score.
    pub fd_f: f64,
    /// Combined F-score (the paper's y-axis).
    pub combined_f: f64,
    /// Cells the repair modified.
    pub cells_modified: usize,
    /// Attributes the repair appended.
    pub attrs_appended: usize,
}

/// Figure 7: combined F-score for each error mix across a sweep of `τ_r`.
pub fn quality_vs_trust(scale: Scale) -> Vec<QualityRow> {
    quality_vs_trust_par(scale, Parallelism::Auto)
}

/// [`quality_vs_trust`] with an explicit [`Parallelism`] setting.
///
/// The four error mixes are independent end-to-end pipelines (generate →
/// perturb → repair → score), so each runs on its own worker thread; rows
/// come back in mix order, identical to the serial sweep. The search inside
/// each mix runs serially — the mixes are the coarsest unit of work.
pub fn quality_vs_trust_par(scale: Scale, par: Parallelism) -> Vec<QualityRow> {
    let tuples = scale.tuples(1000);
    let tau_values = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0];
    let per_mix: Vec<Vec<QualityRow>> = par_map_coarse(par, ERROR_MIXES.len(), |m| {
        let (fd_error_rate, data_error_rate) = ERROR_MIXES[m];
        let workload = Workload::build(&WorkloadSpec {
            tuples,
            attributes: 12,
            fd_count: 1,
            lhs_size: 6,
            data_error_rate,
            fd_error_rate,
            seed: 17,
        });
        // One engine session per mix: the conflict graph is built once and
        // every τ_r of the sweep queries it.
        let engine = workload.engine(Parallelism::Serial, SearchConfig::default().max_expansions);
        let mut rows = Vec::new();
        for &tau_r in &tau_values {
            let Ok(repair) = engine.repair_at_relative(tau_r) else {
                continue;
            };
            let quality = evaluate_repair(
                &workload.truth,
                &repair.modified_fds,
                &repair.repaired_instance,
            );
            rows.push(QualityRow {
                fd_error_rate,
                data_error_rate,
                tau_r,
                data_f: quality.data_f,
                fd_f: quality.fd_f,
                combined_f: quality.combined_f,
                cells_modified: quality.cells_modified,
                attrs_appended: quality.attrs_appended,
            });
        }
        rows
    });
    per_mix.into_iter().flatten().collect()
}

// ---------------------------------------------------------------------------
// Figure 8: best achievable quality, relative-trust vs. unified-cost
// ---------------------------------------------------------------------------

/// One row of the Figure 8 table.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Which repair system produced the row.
    pub algorithm: String,
    /// Fraction of LHS attributes removed from the clean FD.
    pub fd_error_rate: f64,
    /// Fraction of corrupted cells.
    pub data_error_rate: f64,
    /// FD precision.
    pub fd_precision: f64,
    /// FD recall.
    pub fd_recall: f64,
    /// Data precision.
    pub data_precision: f64,
    /// Data recall.
    pub data_recall: f64,
    /// Combined F-score (the paper reports the best setting per algorithm).
    pub combined_f: f64,
    /// For the relative-trust system: the τ_r that achieved the best score.
    pub best_tau_r: Option<f64>,
}

/// Figure 8: the maximum quality achievable by the relative-trust approach
/// (over a sweep of `τ_r`) versus the single repair of the unified-cost
/// baseline, for each error mix.
pub fn versus_unified_cost(scale: Scale) -> Vec<ComparisonRow> {
    versus_unified_cost_par(scale, Parallelism::Auto)
}

/// [`versus_unified_cost`] with an explicit [`Parallelism`] setting; like
/// [`quality_vs_trust_par`], the error mixes fan out one per worker thread.
pub fn versus_unified_cost_par(scale: Scale, par: Parallelism) -> Vec<ComparisonRow> {
    let tuples = scale.tuples(800);
    let tau_values = [0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0];
    let per_mix: Vec<Vec<ComparisonRow>> = par_map_coarse(par, ERROR_MIXES.len(), |m| {
        let (fd_error_rate, data_error_rate) = ERROR_MIXES[m];
        let mut rows = Vec::new();
        let workload = Workload::build(&WorkloadSpec {
            tuples,
            attributes: 12,
            fd_count: 1,
            lhs_size: 6,
            data_error_rate,
            fd_error_rate,
            seed: 23,
        });
        // One engine session per mix serves both systems: the unified-cost
        // baseline and the relative-trust sweep share its conflict graph.
        let engine = workload.engine(Parallelism::Serial, SearchConfig::default().max_expansions);

        // --- unified-cost baseline (one repair, fixed trade-off) ---
        let unified = engine.unified_baseline(&UnifiedCostConfig {
            seed: workload.spec.seed,
            ..Default::default()
        });
        let unified_quality = evaluate_repair(
            &workload.truth,
            &unified.modified_fds,
            &unified.repaired_instance,
        );
        rows.push(ComparisonRow {
            algorithm: "Uniform-Cost".to_string(),
            fd_error_rate,
            data_error_rate,
            fd_precision: unified_quality.fd_precision,
            fd_recall: unified_quality.fd_recall,
            data_precision: unified_quality.data_precision,
            data_recall: unified_quality.data_recall,
            combined_f: unified_quality.combined_f,
            best_tau_r: None,
        });

        // --- relative-trust repairs across τ_r; keep the best ---
        let mut best: Option<(f64, rt_datagen::RepairQuality)> = None;
        for &tau_r in &tau_values {
            let Ok(repair) = engine.repair_at_relative(tau_r) else {
                continue;
            };
            let quality = evaluate_repair(
                &workload.truth,
                &repair.modified_fds,
                &repair.repaired_instance,
            );
            if best
                .as_ref()
                .map(|(_, q)| quality.combined_f > q.combined_f)
                .unwrap_or(true)
            {
                best = Some((tau_r, quality));
            }
        }
        if let Some((tau_r, quality)) = best {
            rows.push(ComparisonRow {
                algorithm: "Relative-Trust".to_string(),
                fd_error_rate,
                data_error_rate,
                fd_precision: quality.fd_precision,
                fd_recall: quality.fd_recall,
                data_precision: quality.data_precision,
                data_recall: quality.data_recall,
                combined_f: quality.combined_f,
                best_tau_r: Some(tau_r),
            });
        }
        rows
    });
    per_mix.into_iter().flatten().collect()
}

// ---------------------------------------------------------------------------
// Figures 9–12: performance of A*-Repair vs Best-First-Repair
// ---------------------------------------------------------------------------

/// One performance measurement (a point on Figures 9–12).
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Which search produced the row (`A*-Repair` / `Best-First-Repair`).
    pub algorithm: String,
    /// Number of tuples of the workload.
    pub tuples: usize,
    /// Number of attributes of the workload.
    pub attributes: usize,
    /// Number of FDs.
    pub fds: usize,
    /// Relative trust used.
    pub tau_r: f64,
    /// Wall-clock seconds of the search.
    pub seconds: f64,
    /// States popped from the open list.
    pub states_visited: usize,
    /// `true` when the expansion cap stopped the search early.
    pub truncated: bool,
}

fn measure_search(
    workload: &Workload,
    tau_r: f64,
    algorithm: SearchAlgorithm,
    config: &SearchConfig,
) -> PerfRow {
    let problem = RepairProblem::with_weight(
        workload.dirty_instance(),
        workload.dirty_fds(),
        WeightKind::DistinctCount,
    );
    let tau = problem.absolute_tau(tau_r);
    let outcome = rt_core::search::run_search(&problem, tau, config, algorithm);
    PerfRow {
        algorithm: match algorithm {
            SearchAlgorithm::AStar => "A*-Repair".to_string(),
            SearchAlgorithm::BestFirst => "Best-First-Repair".to_string(),
        },
        tuples: workload.spec.tuples,
        attributes: workload.spec.attributes,
        fds: workload.spec.fd_count,
        tau_r,
        seconds: outcome.stats.elapsed.as_secs_f64(),
        states_visited: outcome.stats.states_expanded,
        truncated: outcome.stats.truncated,
    }
}

/// Default expansion cap used by the performance experiments: large enough
/// that A* never hits it on the default workloads, small enough that
/// Best-First terminates in reasonable time when it struggles (the paper
/// simply reports ">24h" in those cases).
fn perf_config() -> SearchConfig {
    SearchConfig {
        max_expansions: 10_000,
        timing: true,
        ..Default::default()
    }
}

/// Figure 9: runtime and visited states as the number of tuples grows
/// (2 FDs, τ_r = 1%).
pub fn scalability_tuples(scale: Scale) -> Vec<PerfRow> {
    let base = match scale {
        Scale::Smoke => vec![200, 400],
        Scale::Default => vec![500, 1000, 2000],
        Scale::Paper => vec![1000, 5000, 10_000, 20_000, 40_000, 60_000],
    };
    let mut rows = Vec::new();
    for tuples in base {
        let workload = Workload::build(&WorkloadSpec {
            tuples,
            attributes: 12,
            fd_count: 2,
            lhs_size: 4,
            data_error_rate: 0.002,
            fd_error_rate: 0.5,
            seed: 31,
        });
        for algorithm in [SearchAlgorithm::AStar, SearchAlgorithm::BestFirst] {
            rows.push(measure_search(&workload, 0.01, algorithm, &perf_config()));
        }
    }
    rows
}

/// Figure 10: runtime as the number of attributes grows (2 FDs, τ_r = 1%).
pub fn scalability_attributes(scale: Scale) -> Vec<PerfRow> {
    let attrs = match scale {
        Scale::Smoke => vec![8, 10],
        Scale::Default => vec![8, 12, 16, 20],
        Scale::Paper => vec![8, 12, 16, 20, 26, 32],
    };
    let tuples = scale.tuples(1000);
    let mut rows = Vec::new();
    for attributes in attrs {
        let workload = Workload::build(&WorkloadSpec {
            tuples,
            attributes,
            fd_count: 2,
            lhs_size: 4,
            data_error_rate: 0.002,
            fd_error_rate: 0.5,
            seed: 37,
        });
        for algorithm in [SearchAlgorithm::AStar, SearchAlgorithm::BestFirst] {
            rows.push(measure_search(&workload, 0.01, algorithm, &perf_config()));
        }
    }
    rows
}

/// Figure 11: runtime as the number of FDs grows (τ_r = 1%).
pub fn scalability_fds(scale: Scale) -> Vec<PerfRow> {
    let fd_counts = match scale {
        Scale::Smoke => vec![1, 2],
        Scale::Default => vec![1, 2, 3, 4],
        Scale::Paper => vec![1, 2, 3, 4],
    };
    let tuples = scale.tuples(500);
    let mut rows = Vec::new();
    for fd_count in fd_counts {
        let workload = Workload::build(&WorkloadSpec {
            tuples,
            attributes: 14,
            fd_count,
            lhs_size: 3,
            data_error_rate: 0.002,
            fd_error_rate: 0.4,
            seed: 41,
        });
        for algorithm in [SearchAlgorithm::AStar, SearchAlgorithm::BestFirst] {
            rows.push(measure_search(&workload, 0.01, algorithm, &perf_config()));
        }
    }
    rows
}

/// Figure 12: runtime and visited states as `τ_r` varies (1 FD).
pub fn effect_of_tau(scale: Scale) -> Vec<PerfRow> {
    let tuples = scale.tuples(1000);
    let tau_values = [0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 0.99];
    let workload = Workload::build(&WorkloadSpec {
        tuples,
        attributes: 12,
        fd_count: 1,
        lhs_size: 6,
        data_error_rate: 0.005,
        fd_error_rate: 0.5,
        seed: 43,
    });
    let mut rows = Vec::new();
    for &tau_r in &tau_values {
        for algorithm in [SearchAlgorithm::AStar, SearchAlgorithm::BestFirst] {
            rows.push(measure_search(&workload, tau_r, algorithm, &perf_config()));
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 13: generating multiple repairs
// ---------------------------------------------------------------------------

/// One point of Figure 13.
#[derive(Debug, Clone)]
pub struct MultiRepairRow {
    /// Strategy (`Range-Repair` or `Sampling-Repair`).
    pub algorithm: String,
    /// Upper end of the τ_r range (the x-axis of Figure 13).
    pub max_tau_r: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Number of distinct FD repairs found.
    pub repairs_found: usize,
    /// States expanded in total.
    pub states_visited: usize,
}

/// Figure 13: Range-Repair (Algorithm 6) vs Sampling-Repair runtime for a
/// growing range `τ_r ∈ [0, max]`.
pub fn multi_repair_comparison(scale: Scale) -> Vec<MultiRepairRow> {
    let tuples = scale.tuples(1000);
    let max_values = [0.1, 0.2, 0.3];
    // No injected cell errors: every conflict stems from the weakened FD, so
    // every τ-range down to τ = 0 contains at least one repair (mirroring the
    // paper's Figure 13 setup, which always finds repairs in [0, max τ_r]).
    let workload = Workload::build(&WorkloadSpec {
        tuples,
        attributes: 12,
        fd_count: 1,
        lhs_size: 6,
        data_error_rate: 0.0,
        fd_error_rate: 0.5,
        seed: 47,
    });
    // One engine serves every range of the figure; Range-Repair and
    // Sampling-Repair are two query styles over the same session.
    let engine = workload.engine(Parallelism::Auto, perf_config().max_expansions);
    let reference = engine.delta_p_original();
    let mut rows = Vec::new();
    for &max_tau_r in &max_values {
        let tau_high = ((reference as f64) * max_tau_r).ceil() as usize;

        // This figure measures the FD search only, so drive the engine's
        // resumable RangeSearch directly instead of the materializing
        // sweep: same traversal and stats, no data repairs built just to
        // be counted.
        let range =
            RangeSearch::new(engine.problem(), 0, tau_high, engine.search_config()).run_to_end();
        let (repairs_found, range_stats) = (range.repairs.len(), range.stats);
        rows.push(MultiRepairRow {
            algorithm: "Range-Repair".to_string(),
            max_tau_r,
            seconds: range_stats.elapsed.as_secs_f64(),
            repairs_found,
            states_visited: range_stats.states_expanded,
        });

        // The paper samples τ_r in steps of 1.7% of δ_P.
        let step = (((reference as f64) * 0.017).ceil() as usize).max(1);
        let sampling = engine.sampling_spectrum(0..=tau_high, step);
        rows.push(MultiRepairRow {
            algorithm: "Sampling-Repair".to_string(),
            max_tau_r,
            seconds: sampling.search_stats.elapsed.as_secs_f64(),
            repairs_found: sampling.len(),
            states_visited: sampling.search_stats.states_expanded,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_experiment_produces_rows_for_every_mix() {
        let rows = quality_vs_trust(Scale::Smoke);
        assert!(!rows.is_empty());
        for &(fd_err, data_err) in ERROR_MIXES.iter() {
            assert!(
                rows.iter()
                    .any(|r| r.fd_error_rate == fd_err && r.data_error_rate == data_err),
                "missing mix ({fd_err}, {data_err})"
            );
        }
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.combined_f));
        }
    }

    #[test]
    fn comparison_experiment_reports_both_algorithms() {
        let rows = versus_unified_cost(Scale::Smoke);
        assert!(rows.iter().any(|r| r.algorithm == "Uniform-Cost"));
        assert!(rows.iter().any(|r| r.algorithm == "Relative-Trust"));
        // One row per algorithm per mix.
        assert_eq!(rows.len(), 2 * ERROR_MIXES.len());
    }

    #[test]
    fn multi_repair_experiment_finds_repairs() {
        let rows = multi_repair_comparison(Scale::Smoke);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.repairs_found >= 1, "{} found no repairs", r.algorithm);
        }
        // Range and sampling agree on the number of repairs for the same
        // range (sampling may only miss repairs, never invent them).
        for pair in rows.chunks(2) {
            assert!(pair[1].repairs_found <= pair[0].repairs_found);
        }
    }

    #[test]
    fn perf_experiments_produce_paired_rows() {
        let rows = scalability_fds(Scale::Smoke);
        assert_eq!(rows.len() % 2, 0);
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].tuples, pair[1].tuples);
            assert_eq!(pair[0].fds, pair[1].fds);
            assert_ne!(pair[0].algorithm, pair[1].algorithm);
        }
    }
}
