//! Workload construction shared by the experiment drivers and benches.

use rt_constraints::FdSet;
use rt_core::{Parallelism, WeightKind};
use rt_datagen::{generate_census_like, perturb, CensusLikeConfig, GroundTruth, PerturbConfig};
use rt_relation::Instance;

/// How large a workload to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few seconds per experiment; used by tests and CI.
    Smoke,
    /// Minutes for the whole suite; the default for the `exp_*` binaries.
    Default,
    /// Paper-sized workloads (tens of minutes to hours on laptop hardware).
    Paper,
}

impl Scale {
    /// Parses `--scale smoke|default|paper` style arguments; unknown values
    /// fall back to `Default`.
    pub fn from_args(args: &[String]) -> Scale {
        for window in args.windows(2) {
            if window[0] == "--scale" {
                return match window[1].as_str() {
                    "smoke" => Scale::Smoke,
                    "paper" => Scale::Paper,
                    _ => Scale::Default,
                };
            }
        }
        Scale::Default
    }

    /// Multiplies a baseline tuple count by the scale factor.
    pub fn tuples(self, default_tuples: usize) -> usize {
        match self {
            Scale::Smoke => (default_tuples / 4).max(200),
            Scale::Default => default_tuples,
            Scale::Paper => default_tuples * 5,
        }
    }
}

/// Declarative description of one experiment workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of tuples.
    pub tuples: usize,
    /// Number of attributes.
    pub attributes: usize,
    /// Number of planted FDs.
    pub fd_count: usize,
    /// LHS size of each planted FD.
    pub lhs_size: usize,
    /// Fraction of cells corrupted.
    pub data_error_rate: f64,
    /// Fraction of LHS attributes removed.
    pub fd_error_rate: f64,
    /// RNG seed for both generation and perturbation.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            tuples: 1000,
            attributes: 12,
            fd_count: 1,
            lhs_size: 6,
            data_error_rate: 0.005,
            fd_error_rate: 0.3,
            seed: 17,
        }
    }
}

/// A fully built workload: the clean/dirty instances, the clean/dirty FDs,
/// and the perturbation ground truth.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The spec the workload was built from.
    pub spec: WorkloadSpec,
    /// Ground truth (clean + dirty instances and FDs, perturbation record).
    pub truth: GroundTruth,
}

impl Workload {
    /// Builds the workload described by `spec`.
    pub fn build(spec: &WorkloadSpec) -> Workload {
        let config = if spec.fd_count <= 1 {
            CensusLikeConfig {
                seed: spec.seed,
                ..CensusLikeConfig::single_fd(spec.tuples, spec.attributes, spec.lhs_size)
            }
        } else {
            CensusLikeConfig {
                seed: spec.seed,
                ..CensusLikeConfig::multi_fd(
                    spec.tuples,
                    spec.attributes,
                    spec.fd_count,
                    spec.lhs_size,
                )
            }
        };
        let (clean, fds) = generate_census_like(&config);
        // The experiment specs express the data error rate per *tuple* (as a
        // fraction of rows receiving one corrupted cell); `perturb` expects a
        // fraction of cells, so divide by the arity. The paper's 34-attribute
        // Census extract and this 8–20 attribute synthetic substitute would
        // otherwise receive wildly different numbers of errors per row for
        // the same nominal rate.
        let cell_rate = spec.data_error_rate / (spec.attributes.max(1) as f64);
        let truth = perturb(
            &clean,
            &fds,
            &PerturbConfig {
                data_error_rate: cell_rate,
                fd_error_rate: spec.fd_error_rate,
                rhs_violation_fraction: 0.5,
                seed: spec.seed.wrapping_mul(31).wrapping_add(7),
            },
        );
        Workload {
            spec: spec.clone(),
            truth,
        }
    }

    /// The dirty instance handed to the repair algorithms.
    pub fn dirty_instance(&self) -> &Instance {
        &self.truth.dirty
    }

    /// The dirty FD set handed to the repair algorithms.
    pub fn dirty_fds(&self) -> &FdSet {
        &self.truth.sigma_dirty
    }

    /// A repair-engine session over the dirty `(I, Σ)` of this workload,
    /// seeded with the workload's seed: the entry point every experiment
    /// driver queries. `parallelism` controls all parallel stages;
    /// `max_expansions` caps each FD search.
    pub fn engine(
        &self,
        parallelism: Parallelism,
        max_expansions: usize,
    ) -> rt_engine::RepairEngine {
        rt_engine::RepairEngine::builder(self.truth.dirty.clone(), self.truth.sigma_dirty.clone())
            .weight(WeightKind::DistinctCount)
            .parallelism(parallelism)
            .max_expansions(max_expansions)
            .timing(true)
            .seed(self.spec.seed)
            .build()
            .expect("workload always yields a valid engine configuration")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_and_violates_dirty_fds_when_perturbed() {
        let spec = WorkloadSpec {
            tuples: 400,
            attributes: 10,
            lhs_size: 4,
            data_error_rate: 0.01,
            fd_error_rate: 0.0,
            ..Default::default()
        };
        let w = Workload::build(&spec);
        assert_eq!(w.dirty_instance().len(), 400);
        assert!(!w.dirty_fds().holds_on(w.dirty_instance()));
        assert!(w.truth.sigma_clean.holds_on(&w.truth.clean));
    }

    #[test]
    fn scale_parsing_and_sizing() {
        assert_eq!(Scale::from_args(&[]), Scale::Default);
        let args: Vec<String> = vec!["prog".into(), "--scale".into(), "smoke".into()];
        assert_eq!(Scale::from_args(&args), Scale::Smoke);
        let args: Vec<String> = vec!["--scale".into(), "paper".into()];
        assert_eq!(Scale::from_args(&args), Scale::Paper);
        assert_eq!(Scale::Smoke.tuples(1000), 250);
        assert_eq!(Scale::Default.tuples(1000), 1000);
        assert_eq!(Scale::Paper.tuples(1000), 5000);
    }

    #[test]
    fn multi_fd_workload_has_requested_fd_count() {
        let spec = WorkloadSpec {
            tuples: 300,
            attributes: 14,
            fd_count: 2,
            lhs_size: 3,
            data_error_rate: 0.005,
            fd_error_rate: 0.3,
            ..Default::default()
        };
        let w = Workload::build(&spec);
        assert_eq!(w.dirty_fds().len(), 2);
    }
}
