//! # rt-bench
//!
//! Experiment drivers reproducing every table and figure of the paper's
//! evaluation (Section 8), plus the Criterion micro-benchmarks.
//!
//! Each experiment lives in [`experiments`] as a plain function returning a
//! vector of result rows; the `exp_*` binaries print those rows as a table
//! (mirroring the series the paper plots) and also dump them as JSON under
//! `target/experiments/` so `EXPERIMENTS.md` can quote them.
//!
//! | Paper artefact | Function | Binary |
//! |---|---|---|
//! | Figure 7 (quality vs. relative trust) | [`experiments::quality_vs_trust`] | `exp_quality_vs_trust` |
//! | Figure 8 (vs. unified-cost repair) | [`experiments::versus_unified_cost`] | `exp_vs_unified_cost` |
//! | Figure 9 (scalability in tuples) | [`experiments::scalability_tuples`] | `exp_scal_tuples` |
//! | Figure 10 (scalability in attributes) | [`experiments::scalability_attributes`] | `exp_scal_attrs` |
//! | Figure 11 (scalability in FDs) | [`experiments::scalability_fds`] | `exp_scal_fds` |
//! | Figure 12 (effect of τ) | [`experiments::effect_of_tau`] | `exp_effect_tau` |
//! | Figure 13 (multiple repairs) | [`experiments::multi_repair_comparison`] | `exp_multi_repairs` |
//!
//! The default workload sizes are scaled down from the paper's (which used a
//! 300k-tuple Census extract on 2012-era server hardware) so that the whole
//! suite completes in minutes; every driver accepts a [`Scale`] to run the
//! paper-sized configuration instead.

//!
//! ```
//! use rt_bench::{Scale, Workload, WorkloadSpec};
//!
//! // Declarative workload: clean generation + Section 8.1 perturbation.
//! let spec = WorkloadSpec { tuples: Scale::Smoke.tuples(800), ..Default::default() };
//! let workload = Workload::build(&spec);
//! assert_eq!(workload.dirty_instance().len(), 200);
//! assert!(!workload.dirty_fds().holds_on(workload.dirty_instance()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod json;
pub mod report;
pub mod workloads;

pub use report::{render_table, write_json_report};
pub use workloads::{Scale, Workload, WorkloadSpec};
