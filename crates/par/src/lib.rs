//! # rt-par
//!
//! The workspace's parallel execution layer: a [`Parallelism`] configuration
//! shared by every crate and a handful of deterministic data-parallel
//! primitives built on [`std::thread::scope`].
//!
//! The build environment cannot fetch `rayon`, so this crate provides the
//! small subset the repair pipeline needs — fork/join maps over slices and
//! index ranges — with one hard guarantee the whole workspace relies on:
//!
//! > **Determinism.** For any `Parallelism` setting, [`par_map`] and
//! > [`par_map_indexed`] return results in input order, and callers merge
//! > them in that order. Parallel runs are therefore bit-identical to
//! > serial runs; thread count only changes wall-clock time.
//!
//! The primitives deliberately mirror a tiny slice of rayon's API surface
//! (`par_map` ≈ `par_iter().map().collect()`), so swapping rayon in later is
//! a local change to this crate.
//!
//! ```
//! use rt_par::{par_map, Parallelism};
//!
//! let squares = par_map(Parallelism::Fixed(4), &[1, 2, 3, 4], |&x| x * x);
//! // Results come back in input order for every thread count.
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! assert_eq!(squares, par_map(Parallelism::Serial, &[1, 2, 3, 4], |&x| x * x));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::{Condvar, Mutex};

/// How many worker threads the parallel primitives may use.
///
/// Threaded through `SearchConfig` in `rt-core` and exposed as `--threads`
/// on the `rtclean` CLI. The default is [`Parallelism::Auto`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use every available core ([`std::thread::available_parallelism`]).
    #[default]
    Auto,
    /// Single-threaded: run everything inline on the calling thread.
    Serial,
    /// Use exactly `n` threads (`Fixed(0)` and `Fixed(1)` behave like
    /// [`Parallelism::Serial`]).
    Fixed(usize),
}

impl Parallelism {
    /// The number of worker threads this setting resolves to on the current
    /// machine (always at least 1).
    pub fn effective_threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// `true` when this setting runs on the calling thread only.
    pub fn is_serial(self) -> bool {
        self.effective_threads() <= 1
    }

    /// Parses the CLI spelling used by `rtclean --threads`:
    /// `"auto"`, `"serial"`, `"1"` (= serial) or a thread count.
    pub fn parse(s: &str) -> Result<Parallelism, String> {
        match s {
            "auto" => Ok(Parallelism::Auto),
            "serial" => Ok(Parallelism::Serial),
            n => match n.parse::<usize>() {
                Ok(0) | Ok(1) => Ok(Parallelism::Serial),
                Ok(n) => Ok(Parallelism::Fixed(n)),
                Err(_) => Err(format!(
                    "invalid thread count `{n}` (use auto, serial, or a number)"
                )),
            },
        }
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Auto => write!(f, "auto ({} threads)", self.effective_threads()),
            Parallelism::Serial => write!(f, "serial"),
            Parallelism::Fixed(n) => write!(f, "{n} threads"),
        }
    }
}

/// Below this many items a parallel map runs inline: spawning threads costs
/// more than it saves on tiny inputs.
const MIN_ITEMS_PER_THREAD: usize = 16;

/// Maps `f` over `items`, possibly in parallel, returning results in input
/// order (bit-identical to `items.iter().map(...).collect()`).
///
/// The slice is split into one contiguous chunk per worker; workers never
/// share mutable state, so ordering is deterministic by construction.
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(par, items.len(), |i| f(&items[i]))
}

/// Maps `f` over the index range `0..len`, possibly in parallel, returning
/// results in index order.
///
/// This is the core primitive: [`par_map`] delegates to it, and callers that
/// fan out over something other than a slice (components, τ values, blocks)
/// use it directly.
pub fn par_map_indexed<R, F>(par: Parallelism, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = par
        .effective_threads()
        .min(len / MIN_ITEMS_PER_THREAD.max(1))
        .max(1);
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }

    // One contiguous index chunk per worker; chunk results are concatenated
    // in chunk order, which equals index order.
    let chunk_len = len.div_ceil(threads);
    let chunks: Vec<std::ops::Range<usize>> = (0..threads)
        .map(|t| (t * chunk_len).min(len)..((t + 1) * chunk_len).min(len))
        .filter(|r| !r.is_empty())
        .collect();

    let f = &f;
    let mut per_chunk: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(chunks.len().saturating_sub(1));
        let mut iter = chunks.iter().cloned();
        let first = iter.next().expect("at least one non-empty chunk");
        for range in iter {
            handles.push(scope.spawn(move || range.map(f).collect::<Vec<R>>()));
        }
        // The calling thread works on the first chunk instead of idling.
        per_chunk.push(first.map(f).collect());
        for handle in handles {
            per_chunk.push(handle.join().expect("worker thread panicked"));
        }
    });
    per_chunk.into_iter().flatten().collect()
}

/// Like [`par_map_indexed`] but without the small-input cutoff: always uses
/// up to `len` workers even for a handful of items.
///
/// Intended for coarse-grained fan-out where each item is a large unit of
/// work (a whole experiment, a τ-search, a graph component), so thread-spawn
/// overhead is negligible compared to the per-item cost.
pub fn par_map_coarse<R, F>(par: Parallelism, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = par.effective_threads().min(len).max(1);
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let chunk_len = len.div_ceil(threads);
    let chunks: Vec<std::ops::Range<usize>> = (0..threads)
        .map(|t| (t * chunk_len).min(len)..((t + 1) * chunk_len).min(len))
        .filter(|r| !r.is_empty())
        .collect();
    let f = &f;
    let mut per_chunk: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(chunks.len().saturating_sub(1));
        let mut iter = chunks.iter().cloned();
        let first = iter.next().expect("at least one non-empty chunk");
        for range in iter {
            handles.push(scope.spawn(move || range.map(f).collect::<Vec<R>>()));
        }
        per_chunk.push(first.map(f).collect());
        for handle in handles {
            per_chunk.push(handle.join().expect("worker thread panicked"));
        }
    });
    per_chunk.into_iter().flatten().collect()
}

/// A counting gate bounding how many threads may be inside a section at
/// once — the blocking complement to the fork/join maps above, used by
/// `rt-server` to cap concurrent connection handlers.
///
/// [`Gate::enter`] blocks until one of the `capacity` slots is free and
/// returns a [`GatePass`] guard; dropping the guard releases the slot and
/// wakes one waiter. Admission order among blocked waiters is left to the
/// OS — the primitive bounds *concurrency*, and callers that need
/// deterministic results must not depend on admission order (the same rule
/// the parallel maps follow).
#[derive(Debug)]
pub struct Gate {
    in_use: Mutex<usize>,
    freed: Condvar,
    capacity: usize,
}

impl Gate {
    /// A gate admitting at most `capacity` concurrent passes (clamped to at
    /// least 1 — a zero-capacity gate would deadlock its first caller).
    pub fn new(capacity: usize) -> Gate {
        Gate {
            in_use: Mutex::new(0),
            freed: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The maximum number of concurrently held passes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of passes currently held (a snapshot; may be stale by the
    /// time the caller looks at it).
    pub fn in_use(&self) -> usize {
        *self.in_use.lock().expect("gate lock poisoned")
    }

    /// Blocks until a slot is free, then occupies it for the lifetime of
    /// the returned pass.
    pub fn enter(&self) -> GatePass<'_> {
        let mut in_use = self.in_use.lock().expect("gate lock poisoned");
        while *in_use >= self.capacity {
            in_use = self.freed.wait(in_use).expect("gate lock poisoned");
        }
        *in_use += 1;
        GatePass { gate: self }
    }

    /// Non-blocking [`Gate::enter`]: `None` when the gate is full.
    pub fn try_enter(&self) -> Option<GatePass<'_>> {
        let mut in_use = self.in_use.lock().expect("gate lock poisoned");
        if *in_use >= self.capacity {
            return None;
        }
        *in_use += 1;
        Some(GatePass { gate: self })
    }
}

/// An occupied [`Gate`] slot; dropping it releases the slot.
#[derive(Debug)]
pub struct GatePass<'g> {
    gate: &'g Gate,
}

impl Drop for GatePass<'_> {
    fn drop(&mut self) {
        let mut in_use = self.gate.in_use.lock().expect("gate lock poisoned");
        *in_use -= 1;
        drop(in_use);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_floor_is_one() {
        assert_eq!(Parallelism::Serial.effective_threads(), 1);
        assert_eq!(Parallelism::Fixed(0).effective_threads(), 1);
        assert_eq!(Parallelism::Fixed(5).effective_threads(), 5);
        assert!(Parallelism::Auto.effective_threads() >= 1);
        assert!(Parallelism::Serial.is_serial());
        assert!(Parallelism::Fixed(1).is_serial());
        assert!(!Parallelism::Fixed(4).is_serial());
    }

    #[test]
    fn parse_accepts_cli_spellings() {
        assert_eq!(Parallelism::parse("auto"), Ok(Parallelism::Auto));
        assert_eq!(Parallelism::parse("serial"), Ok(Parallelism::Serial));
        assert_eq!(Parallelism::parse("1"), Ok(Parallelism::Serial));
        assert_eq!(Parallelism::parse("8"), Ok(Parallelism::Fixed(8)));
        assert!(Parallelism::parse("lots").is_err());
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..10_000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for par in [
            Parallelism::Serial,
            Parallelism::Fixed(2),
            Parallelism::Fixed(7),
        ] {
            assert_eq!(par_map(par, &items, |x| x * x + 1), serial, "{par:?}");
        }
    }

    #[test]
    fn par_map_indexed_handles_edge_sizes() {
        for len in [0usize, 1, 2, 15, 16, 17, 1000] {
            let expected: Vec<usize> = (0..len).map(|i| i * 3).collect();
            assert_eq!(
                par_map_indexed(Parallelism::Fixed(4), len, |i| i * 3),
                expected
            );
        }
    }

    #[test]
    fn coarse_map_parallelizes_small_fanouts() {
        let results = par_map_coarse(Parallelism::Fixed(4), 4, |i| i * 2);
        assert_eq!(results, vec![0, 2, 4, 6]);
    }

    #[test]
    fn gate_bounds_concurrency() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let gate = Gate::new(2);
        assert_eq!(gate.capacity(), 2);
        assert_eq!(Gate::new(0).capacity(), 1);

        let peak = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let _pass = gate.enter();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                    live.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2);
        assert_eq!(gate.in_use(), 0);
    }

    #[test]
    fn gate_try_enter_fills_and_releases() {
        let gate = Gate::new(1);
        let pass = gate.try_enter().unwrap();
        assert!(gate.try_enter().is_none());
        drop(pass);
        assert!(gate.try_enter().is_some());
    }
}
