#!/usr/bin/env bash
# CI gate for the relative-trust workspace.
#
# Mirrors the tier-1 verify command (build + test) and adds the
# documentation and lint gates the repo holds itself to:
#
#   ./ci.sh          # run everything
#   ./ci.sh --quick  # build + tests only (skip doc + clippy)
set -euo pipefail
cd "$(dirname "$0")"

quick=0
[ "${1:-}" = "--quick" ] && quick=1

echo "==> checking that no build artifacts are tracked"
if git ls-files -- 'target/' | grep -q .; then
    echo "error: files under target/ are tracked by git; run: git rm -r --cached target/" >&2
    exit 1
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [ "$quick" -eq 0 ]; then
    echo "==> cargo fmt --check"
    cargo fmt --check

    echo "==> cargo doc --no-deps -q (warnings are errors)"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

    echo "==> cargo clippy -- -D warnings"
    cargo clippy --all-targets -- -D warnings
fi

echo "==> CI OK"
