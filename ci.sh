#!/usr/bin/env bash
# CI gate for the relative-trust workspace.
#
# Mirrors the tier-1 verify command (build + test) and adds the
# documentation, lint and work-metric gates the repo holds itself to:
#
#   ./ci.sh          # build + tests + fmt + doc + clippy + rt-lint
#   ./ci.sh --quick  # build + tests + rt-lint only (skip doc + clippy)
#   ./ci.sh --bench  # everything above + deterministic work-metric gate
#
# The workspace is fully vendored (path deps + local shims); no crates.io
# access is required, so every mode also runs offline (CARGO_NET_OFFLINE).
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE="${CARGO_NET_OFFLINE:-true}"

quick=0
bench=0
case "${1:-}" in
    --quick) quick=1 ;;
    --bench) bench=1 ;;
    "") ;;
    *) echo "usage: ./ci.sh [--quick|--bench]" >&2; exit 2 ;;
esac

echo "==> checking that no build artifacts are tracked"
if git ls-files -- 'target/' | grep -q .; then
    echo "error: files under target/ are tracked by git; run: git rm -r --cached target/" >&2
    exit 1
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The service-layer contract is load-bearing enough to name: everything a
# client sees over a socket must be bit-identical to an in-process engine.
# `cargo test -q` above already ran these; rerunning the one suite is cheap
# and keeps the wire ≡ in-process gate visible in every CI mode.
echo "==> cargo test --test protocol_roundtrip (wire results ≡ in-process, bit for bit)"
cargo test -q --test protocol_roundtrip

# The crash-safety contract is equally load-bearing: a server killed at an
# armed fault point, restarted on the same data dir, must recover every
# session to a spectrum bit-identical to an uninterrupted twin, and every
# injected wire fault must surface as a typed error (no hangs, no panics).
echo "==> cargo test --test recovery (crash recovery ≡ uninterrupted, chaos faults typed)"
cargo test -q --test recovery

# The scale-up contract: the sharded conflict-graph build must be
# bit-identical to the monolithic engine — spectra, repairs and search
# stats — including under shard-bridging mutation batches. Runs in every
# mode at the 100k-row warehouse variant (release, so the big smoke stays
# cheap; the debug default inside `cargo test -q` above covers 20k rows).
echo "==> cargo test --release --test shard_equivalence (sharded ≡ monolithic, 100k warehouse)"
RT_WAREHOUSE_ROWS=100000 cargo test -q --release --test shard_equivalence

if [ "$quick" -eq 0 ]; then
    echo "==> cargo fmt --check"
    cargo fmt --check

    echo "==> cargo doc --no-deps -q (warnings are errors)"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

    # Every workspace crate carries a runnable example in its crate-level
    # docs; run them explicitly so a broken example fails fast here rather
    # than hiding inside the main test sweep.
    echo "==> cargo test --doc -q (crate-level doc examples)"
    cargo test --doc -q

    echo "==> cargo clippy -- -D warnings"
    cargo clippy --all-targets -- -D warnings
fi

# Repo-specific determinism lints (rt-lint): the workspace must be clean
# (every finding fixed or carrying a justified `// rtlint: allow(...)`),
# and the selftest proves each catalog lint still trips on its fixture —
# a lint that silently stopped firing is as bad as a violation.
echo "==> rt-lint --deny-warnings (workspace determinism lints)"
cargo run --release -q -p rt-lint -- --deny-warnings

echo "==> rt-lint --selftest (every lint trips on its fixture)"
cargo run --release -q -p rt-lint -- --selftest

if [ "$bench" -eq 1 ]; then
    # Deterministic work-metric regression gate: counts A* expansions,
    # heuristic nodes, conflict-graph builds, incremental edge deltas and
    # cells changed on fixed-seed workloads, plus the typed-CSV-load
    # counters (the encoded path is hard-asserted at key_allocs == 0) and
    # one bounded sweep + mutation stream per catalog scenario
    # (hospital/census/sensors/orders), each verified incremental ≡
    # rebuild bit-identically, and a serve.multi_session scenario driving
    # interleaved sessions over loopback TCP through an LRU eviction with
    # the wire spectrum hard-asserted bit-identical to an in-process twin
    # (this container has one core and no network, so wall-clock numbers
    # would be noise — work counters are exact; the server's idle clock is
    # a logical request counter, so even the serve counters are exact),
    # and the warehouse scale tiers (10k/100k/1M rows streamed through the
    # chunked loader into the sharded engine build, per-row counters
    # hard-asserted flat and the 10k tier sharded ≡ monolithic).
    # --selftest additionally proves the gate trips when any counter is
    # artificially inflated. Re-baseline intentional changes with:
    # cargo run --release -p rt-bench --bin bench_gate -- --out ci/bench_baseline.json
    echo "==> bench gate (deterministic work counters vs ci/bench_baseline.json)"
    cargo run --release -q -p rt-bench --bin bench_gate -- \
        --out ci/BENCH_smoke.json \
        --check ci/bench_baseline.json \
        --selftest
fi

echo "==> CI OK"
