//! Quickstart: the paper's motivating example (Figure 1).
//!
//! An employee relation collected from several sources violates the FD
//! `Surname, GivenName -> Income`. Should we fix the data, or is the FD
//! itself too strong (it conflates distinct people who share a name)?
//! The relative-trust framework answers by producing one repair per trust
//! level instead of forcing a single answer.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use relative_trust::prelude::*;

fn employee_instance() -> (Instance, FdSet) {
    let schema = Schema::new(
        "Persons",
        vec![
            "GivenName",
            "Surname",
            "BirthDate",
            "Gender",
            "Phone",
            "Income",
        ],
    )
    .expect("valid schema");
    let rows: Vec<Vec<&str>> = vec![
        vec!["Jack", "White", "5 Jan 1980", "Male", "923-234-4532", "60k"],
        vec![
            "Sam",
            "McCarthy",
            "19 Jul 1945",
            "Male",
            "989-321-4232",
            "92k",
        ],
        vec![
            "Danielle",
            "Blake",
            "9 Dec 1970",
            "Female",
            "817-213-1211",
            "120k",
        ],
        vec![
            "Matthew",
            "Webb",
            "23 Aug 1985",
            "Male",
            "246-481-0992",
            "87k",
        ],
        vec![
            "Danielle",
            "Blake",
            "9 Dec 1970",
            "Female",
            "817-988-9211",
            "100k",
        ],
        vec!["Hong", "Li", "27 Oct 1972", "Female", "591-977-1244", "90k"],
        vec![
            "Jian",
            "Zhang",
            "14 Apr 1990",
            "Male",
            "912-143-4981",
            "55k",
        ],
        vec!["Ning", "Wu", "3 Nov 1982", "Male", "313-134-9241", "90k"],
        vec!["Hong", "Li", "8 Mar 1979", "Female", "498-214-5822", "84k"],
        vec!["Ning", "Wu", "8 Nov 1982", "Male", "323-456-3452", "95k"],
    ];
    let tuples: Vec<Tuple> = rows
        .iter()
        .map(|r| Tuple::new(r.iter().map(|v| Value::str(*v)).collect()))
        .collect();
    let instance = Instance::from_tuples(schema.clone(), tuples).expect("arity matches");
    let fds = FdSet::parse(&["Surname,GivenName->Income"], &schema).expect("valid FD");
    (instance, fds)
}

fn main() {
    let (instance, fds) = employee_instance();
    let schema = instance.schema().clone();
    println!("Input relation:\n{instance}");
    println!("Asserted FD: {}", fds.display_with(&schema));
    println!("Does the data satisfy it? {}\n", fds.holds_on(&instance));

    // Build the engine once; the paper's experimental weighting
    // (distinct-value counts) prices candidate FD relaxations. The conflict
    // graph is prepared here and reused by every query below.
    let engine = RepairEngine::builder(instance.clone(), fds)
        .seed(7)
        .build()
        .expect("valid engine configuration");
    println!(
        "Conflict graph: {} violating tuple pairs, δP(Σ, I) = {} cell changes\n",
        engine.problem().conflict_graph().edge_count(),
        engine.delta_p_original()
    );

    // The whole spectrum of minimal repairs, from "trust the data" (τ = 0)
    // to "trust the FD" (τ = δP), streamed lazily: each repair is
    // materialized only when the loop pulls it.
    for (i, point) in engine.sweep(0..=engine.delta_p_original()).enumerate() {
        let point = point.expect("sweep within the default expansion cap");
        let repair = &point.repair;
        println!(
            "repair #{i}  (τ ∈ [{}, {}])",
            point.tau_range.0, point.tau_range.1
        );
        println!(
            "  modified FDs : {}",
            repair.modified_fds.display_with(&schema)
        );
        println!("  dist_c(Σ,Σ') : {:.1}", repair.dist_c);
        println!("  cell changes : {}", repair.data_changes());
        for cell in &repair.changed_cells {
            let old = instance.cell(*cell).unwrap();
            let new = repair.repaired_instance.cell(*cell).unwrap();
            println!(
                "    t{}[{}]: {} -> {}",
                cell.row + 1,
                schema.attr_name(cell.attr).unwrap(),
                old,
                new
            );
        }
        println!();
    }
    let stats = engine.stats();
    println!(
        "Engine telemetry: conflict graph built {} time(s), {} repairs materialized,\n\
         {} search states expanded in total.\n",
        stats.conflict_graph_builds, stats.points_materialized, stats.states_expanded
    );

    println!(
        "Interpretation: at τ = 0 the FD is weakened (e.g. by BirthDate/Phone),\n\
         matching the intuition that `Hong Li` refers to two different people;\n\
         at τ = δP the FD is kept and the conflicting incomes are equalised."
    );
}
