//! Trust exploration: enumerating the Pareto frontier of repairs and
//! comparing it with the unified-cost baseline.
//!
//! The paper's central claim is that a *set* of non-dominated repairs —
//! one per relative-trust level — is more useful than the single repair a
//! unified cost model produces. This example makes that concrete:
//!
//! * it prints the full Pareto frontier `(dist_c, dist_d)` found by
//!   Range-Repair (Algorithm 6);
//! * it verifies the frontier really is non-dominated;
//! * it shows where the unified-cost baseline's single repair lands relative
//!   to that frontier.
//!
//! Run with:
//! ```text
//! cargo run --release --example trust_exploration
//! ```

use relative_trust::prelude::*;

fn main() {
    // A census-like workload where the supplied FD is too weak (half of its
    // LHS was lost) and a few cells are corrupted: both data and FD are
    // partly to blame, so the interesting repairs are the mixed ones.
    let (clean, sigma_clean) = generate_census_like(&CensusLikeConfig::single_fd(1500, 12, 6));
    let truth = perturb(
        &clean,
        &sigma_clean,
        &PerturbConfig {
            data_error_rate: 0.002,
            fd_error_rate: 0.5,
            rhs_violation_fraction: 0.6,
            seed: 5,
        },
    );
    let dirty = &truth.dirty;
    let dirty_fds = &truth.sigma_dirty;
    let schema = dirty.schema().clone();

    let engine = RepairEngine::builder(dirty.clone(), dirty_fds.clone())
        .seed(11)
        .build()
        .expect("valid engine configuration");
    let budget = engine.delta_p_original();
    println!(
        "dirty FD: {}   (δP = {budget} cell changes would fix everything by data edits)\n",
        dirty_fds.display_with(&schema)
    );

    // --- the Pareto frontier --------------------------------------------
    let spectrum = engine
        .spectrum()
        .expect("spectrum within the default expansion cap");
    let materialized: Vec<&Repair> = spectrum.repairs().collect();
    println!("Pareto frontier ({} repairs):", materialized.len());
    println!(
        "{:>4}  {:>12}  {:>12}  modified FDs",
        "#", "dist_c(Σ,Σ')", "cell changes"
    );
    for (i, repair) in materialized.iter().enumerate() {
        println!(
            "{:>4}  {:>12.1}  {:>12}  {}",
            i,
            repair.dist_c,
            repair.data_changes(),
            repair.modified_fds.display_with(&schema)
        );
    }

    // Verify non-domination: no repair is at least as good on both axes and
    // strictly better on one.
    for a in &materialized {
        for b in &materialized {
            let dominates = (b.dist_c <= a.dist_c && b.data_changes() <= a.data_changes())
                && (b.dist_c < a.dist_c || b.data_changes() < a.data_changes());
            assert!(!dominates, "frontier contains a dominated repair");
        }
    }
    println!("\nfrontier verified: no repair dominates another.\n");

    // --- the unified-cost baseline ----------------------------------------
    // Served by the same engine session: the baseline reuses the conflict
    // graph the engine prepared instead of rebuilding it.
    let unified = engine.unified_baseline(&UnifiedCostConfig::default());
    println!(
        "unified-cost baseline: {} appended attributes, {} cell changes (single repair)",
        unified.fd_changes(),
        unified.data_changes()
    );
    let quality_unified =
        evaluate_repair(&truth, &unified.modified_fds, &unified.repaired_instance);

    // Compare against the best point of the frontier under the ground truth.
    let best_frontier = materialized
        .iter()
        .map(|r| evaluate_repair(&truth, &r.modified_fds, &r.repaired_instance))
        .max_by(|a, b| a.combined_f.total_cmp(&b.combined_f))
        .expect("frontier is non-empty");
    println!(
        "\ncombined F-score: best frontier point = {:.3}, unified-cost = {:.3}",
        best_frontier.combined_f, quality_unified.combined_f
    );
    println!(
        "the frontier lets a user pick the trust level that matches reality;\n\
         the unified model commits to one trade-off before seeing the evidence."
    );
}
