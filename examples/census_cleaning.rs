//! Census cleaning: an end-to-end run on a census-like workload.
//!
//! This example mirrors the paper's experimental pipeline (Section 8.1):
//!
//! 1. generate a clean census-like instance with a planted FD;
//! 2. perturb both the data (injected violations) and the FD (dropped LHS
//!    attributes);
//! 3. repair the dirty input at several relative-trust levels;
//! 4. score each repair against the ground truth (precision / recall /
//!    combined F-score), reproducing the shape of Figure 7 at small scale.
//!
//! Run with:
//! ```text
//! cargo run --release --example census_cleaning
//! ```

use relative_trust::prelude::*;

fn main() {
    // 1. Clean data with one planted FD over 6 LHS attributes.
    let config = CensusLikeConfig::single_fd(2000, 12, 6);
    let (clean, sigma_clean) = generate_census_like(&config);
    println!(
        "generated {} tuples x {} attributes; planted FD: {}",
        clean.len(),
        clean.schema().arity(),
        sigma_clean.display_with(clean.schema())
    );

    // 2. Perturb: 30% of the FD's LHS attributes dropped, 0.2% of cells
    //    corrupted.
    let truth = perturb(
        &clean,
        &sigma_clean,
        &PerturbConfig {
            data_error_rate: 0.002,
            fd_error_rate: 0.3,
            rhs_violation_fraction: 0.5,
            seed: 99,
        },
    );
    println!(
        "perturbation: {} erroneous cells, {} LHS attributes removed",
        truth.error_count(),
        truth.removed_attr_count()
    );
    println!(
        "dirty FD handed to the cleaner: {}",
        truth.sigma_dirty.display_with(clean.schema())
    );

    // 3. Repair at several relative-trust levels — one engine session
    //    serves every query off the conflict graph it built once.
    let engine = RepairEngine::builder(truth.dirty.clone(), truth.sigma_dirty.clone())
        .build()
        .expect("valid engine configuration");
    println!(
        "conflict graph: {} edges, δP(Σd, Id) = {}\n",
        engine.problem().conflict_graph().edge_count(),
        engine.delta_p_original()
    );

    println!(
        "{:>6}  {:>8}  {:>8}  {:>10}  {:>7}  {:>6}",
        "tau_r", "data F", "FD F", "combined F", "cells", "attrs"
    );
    let mut best: Option<(f64, f64)> = None;
    for tau_r in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let Ok(repair) = engine.repair_at_relative(tau_r) else {
            println!("{:>6}  no repair found", format!("{:.0}%", tau_r * 100.0));
            continue;
        };
        // 4. Score against the ground truth.
        let quality = evaluate_repair(&truth, &repair.modified_fds, &repair.repaired_instance);
        println!(
            "{:>6}  {:>8.3}  {:>8.3}  {:>10.3}  {:>7}  {:>6}",
            format!("{:.0}%", tau_r * 100.0),
            quality.data_f,
            quality.fd_f,
            quality.combined_f,
            quality.cells_modified,
            quality.attrs_appended
        );
        if best.map(|(_, f)| quality.combined_f > f).unwrap_or(true) {
            best = Some((tau_r, quality.combined_f));
        }
    }
    if let Some((tau_r, f)) = best {
        println!(
            "\nbest combined F-score {:.3} achieved at relative trust {:.0}%.",
            f,
            tau_r * 100.0
        );
        println!(
            "The right trust level depends on how the errors were introduced — \
             which is exactly why the paper argues for exposing the whole spectrum."
        );
    }
}
