//! Load → engine → sweep → mutation replay, end to end on a bundled CSV.
//!
//! This example drives the typed ingestion front door on the scenario
//! catalog's hospital fixture: the CSV is parsed **directly into
//! dictionary codes** (column types inferred, nulls classified per cell),
//! an engine session is built once, a lazy τ-sweep prints the head of the
//! repair spectrum, and a small mutation batch is then replayed against
//! the *live* session — the conflict graph is patched, never rebuilt.
//!
//! ```sh
//! cargo run --release --example csv_repair
//! ```

use relative_trust::prelude::*;
use relative_trust::scenarios::HOSPITAL_CSV;

fn main() -> Result<(), EngineError> {
    // --- 1. typed CSV load ------------------------------------------------
    // The fixture ships inside the binary; `rt_io::read_instance` infers a
    // type per column (provider_id:int, score:float, names:str, ...) and
    // interns raw field text straight into the dictionary encoding.
    let report = relative_trust::io::read_instance(
        HOSPITAL_CSV.as_bytes(),
        &CsvOptions::csv().relation("hospital"),
    )
    .map_err(|e| EngineError::Parse {
        path: "hospital.csv (bundled)".into(),
        line: 0,
        message: e.to_string(),
    })?;
    let instance = report.instance;
    let schema = instance.schema().clone();
    println!(
        "loaded {} tuples × {} attributes ({} null cells)",
        instance.len(),
        schema.arity(),
        report.null_cells
    );
    let types: Vec<String> = schema
        .attributes()
        .zip(report.columns.iter())
        .map(|((_, n), t)| format!("{n}:{t}"))
        .collect();
    println!("inferred types: {}\n", types.join(", "));

    // --- 2. engine session ------------------------------------------------
    // Hospital-style dependencies, plus one *inaccurate* constraint: a
    // condition spans several measure codes, so `condition->measure_code`
    // is false on the data and must be relaxed rather than enforced.
    let fds = FdSet::parse(
        &[
            "zip->city",
            "provider_id->hospital_name",
            "measure_code->measure_name",
            "condition->measure_code",
        ],
        &schema,
    )
    .map_err(EngineError::Fd)?;
    let mut engine = RepairEngine::builder(instance, fds)
        .weight(WeightKind::DistinctCount)
        .parallelism(Parallelism::Auto)
        .build()?;
    println!(
        "{} conflicting tuple pairs, δP = {}",
        engine.problem().conflict_graph().edge_count(),
        engine.delta_p_original()
    );

    // --- 3. lazy sweep ----------------------------------------------------
    // The stream materializes one spectrum point per `next()`; taking the
    // head costs only the head (the deep small-τ searches never run).
    println!("\nhead of the repair spectrum (largest τ first):");
    for point in engine.sweep(0..=engine.delta_p_original()).take(3) {
        let point = point?;
        println!(
            "  τ ∈ [{:>3}, {:>3}]  FD cost {:>6.1}  cell changes {:>3}   {}",
            point.tau_range.0,
            point.tau_range.1,
            point.repair.dist_c,
            point.repair.data_changes(),
            point.repair.modified_fds.display_with(&schema)
        );
    }

    // --- 4. live mutation replay -------------------------------------------
    // New records arrive and an upstream fix lands; the session absorbs
    // both incrementally and stays bit-identical to a fresh rebuild.
    let zip = schema.attr_id("zip").map_err(EngineError::Relation)?;
    let outcome = engine.apply(
        &MutationBatch::new()
            .insert_row(
                "10011,Lakeside General,1 Pier Rd,Mobile,AL,36608,Mobile,2515550111,AMI-1,\
                 Aspirin at arrival,Heart Attack,91.5,120"
                    .split(',')
                    .map(Value::parse)
                    .collect(),
            )
            .update_cell(CellRef::new(3, zip), Value::int(35233)),
    )?;
    println!(
        "\napplied a live batch: +{} rows, ~{} cells, conflict edges +{}/-{}",
        outcome.effect.rows_inserted,
        outcome.effect.cells_updated,
        outcome.effect.edges_added,
        outcome.effect.edges_removed
    );
    let stats = engine.stats();
    println!(
        "conflict graph builds: {} (rebuilds avoided: {})",
        stats.conflict_graph_builds, stats.graph_rebuild_avoided
    );
    assert_eq!(stats.conflict_graph_builds, 1);

    // The post-mutation spectrum head reflects the new data.
    println!("\npost-mutation spectrum head:");
    for point in engine.sweep(0..=engine.delta_p_original()).take(2) {
        let point = point?;
        println!(
            "  τ ∈ [{:>3}, {:>3}]  FD cost {:>6.1}  cell changes {:>3}",
            point.tau_range.0,
            point.tau_range.1,
            point.repair.dist_c,
            point.repair.data_changes(),
        );
    }
    Ok(())
}
