//! Property-based tests over the core invariants of the repair system,
//! driven by seeded randomly generated instances and FD sets.
//!
//! The seed used `proptest`, which the offline build environment cannot
//! fetch; the same properties are checked here with an explicit
//! seeded-generation loop (48 cases per property, like the original
//! `ProptestConfig::with_cases(48)`), trading automatic shrinking for
//! zero dependencies. Failures print the offending case seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relative_trust::prelude::*;
use rt_graph::{exact_vertex_cover, matching_vertex_cover};

const CASES: u64 = 48;

/// A small random instance over `arity` attributes with values in
/// `[0, max_value)` — small domains so FD violations are frequent.
fn random_instance(rng: &mut StdRng, arity: usize, max_rows: usize, max_value: i64) -> Instance {
    let rows = rng.gen_range(2..max_rows);
    let rows: Vec<Vec<i64>> = (0..rows)
        .map(|_| (0..arity).map(|_| rng.gen_range(0..max_value)).collect())
        .collect();
    let schema = Schema::with_arity(arity).unwrap();
    Instance::from_int_rows(schema, &rows).unwrap()
}

/// A random FD set over `arity` attributes with 1..=max_fds FDs, each with
/// 1..=2 LHS attributes and a guaranteed non-trivial, non-empty LHS.
fn random_fdset(rng: &mut StdRng, arity: usize, max_fds: usize) -> FdSet {
    let count = rng.gen_range(1..max_fds + 1);
    let fds: Vec<Fd> = (0..count)
        .map(|_| {
            let rhs = AttrId(rng.gen_range(0..arity) as u16);
            let mut lhs = AttrSet::singleton(AttrId(rng.gen_range(0..arity) as u16));
            if rng.gen_range(0..2) == 1 {
                lhs.insert(AttrId(rng.gen_range(0..arity) as u16));
            }
            let lhs = lhs.without(rhs);
            let lhs = if lhs.is_empty() {
                AttrSet::singleton(AttrId(((rhs.index() + 1) % arity) as u16))
            } else {
                lhs
            };
            Fd::new(lhs, rhs)
        })
        .collect();
    FdSet::from_fds(fds)
}

/// Algorithm 4: the repaired instance always satisfies the FDs and never
/// changes more than `|cover| · min(|R|-1, |Σ|)` cells (Theorem 3).
#[test]
fn data_repair_satisfies_fds_and_respects_bound() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1000 + case);
        let instance = random_instance(&mut rng, 4, 14, 3);
        let fds = random_fdset(&mut rng, 4, 2);
        let seed = rng.gen_range(0..1000u64);
        let out = repair_data(&instance, &fds, seed);
        assert!(fds.holds_on(&out.repaired), "case {case}");
        let alpha = (instance.schema().arity() - 1).min(fds.len()).max(1);
        assert!(out.distance() <= out.cover_size * alpha, "case {case}");
        // Tuple count never changes.
        assert_eq!(out.repaired.len(), instance.len(), "case {case}");
    }
}

/// The matching-based vertex cover is a valid cover and within twice the
/// optimum on small conflict graphs.
#[test]
fn vertex_cover_is_within_factor_two() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x2000 + case);
        let instance = random_instance(&mut rng, 3, 10, 2);
        let fds = random_fdset(&mut rng, 3, 2);
        let cg = ConflictGraph::build(&instance, &fds);
        let graph = cg.to_graph();
        let approx = matching_vertex_cover(&graph);
        assert!(
            graph.is_vertex_cover(&approx.clone().into_set()),
            "case {case}"
        );
        if let Some(exact) = exact_vertex_cover(&graph, 200_000) {
            assert!(approx.len() <= 2 * exact.len().max(1), "case {case}");
            assert!(exact.len() <= approx.len(), "case {case}");
        }
    }
}

/// Conflict-graph filtering by difference sets agrees with rebuilding the
/// conflict graph from scratch for relaxed FD sets.
#[test]
fn subgraph_filtering_matches_rebuild() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x3000 + case);
        let instance = random_instance(&mut rng, 4, 12, 3);
        let fds = random_fdset(&mut rng, 4, 2);
        let extension_attr = rng.gen_range(0..4usize);
        let cg = ConflictGraph::build(&instance, &fds);
        // Relax every FD by appending one attribute (when legal).
        let extensions: Vec<AttrSet> = fds
            .iter()
            .map(|(_, fd)| {
                let a = AttrId(extension_attr as u16);
                if fd.rhs == a || fd.lhs.contains(a) {
                    AttrSet::EMPTY
                } else {
                    AttrSet::singleton(a)
                }
            })
            .collect();
        let relaxed = fds.extend_lhs(&extensions);
        let filtered = cg.subgraph_for(&relaxed);
        let rebuilt = ConflictGraph::build(&instance, &relaxed).to_graph();
        let filtered_edges: Vec<(usize, usize)> = filtered.edges().collect();
        let rebuilt_edges: Vec<(usize, usize)> = rebuilt.edges().collect();
        assert_eq!(filtered_edges, rebuilt_edges, "case {case}");
    }
}

/// Algorithm 1: the τ-constrained repair satisfies its FDs, stays within
/// the budget, and its FD distance is non-increasing in τ.
#[test]
fn tau_constrained_repairs_are_sound_and_monotone() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x4000 + case);
        let instance = random_instance(&mut rng, 4, 12, 2);
        let fds = random_fdset(&mut rng, 4, 2);
        let engine = RepairEngine::builder(instance.clone(), fds.clone())
            .weight(WeightKind::AttrCount)
            .build()
            .expect("valid engine configuration");
        let budget = engine.delta_p_original();
        let mut previous = f64::INFINITY;
        for tau in 0..=budget {
            let Ok(repair) = engine.repair_at(tau) else {
                continue;
            };
            assert!(
                repair.modified_fds.holds_on(&repair.repaired_instance),
                "case {case}"
            );
            assert!(repair.delta_p <= tau, "case {case}");
            assert!(
                repair.data_changes() <= repair.delta_p.max(tau),
                "case {case}"
            );
            assert!(fds.is_relaxation(&repair.modified_fds), "case {case}");
            assert!(repair.dist_c <= previous + 1e-9, "case {case}");
            previous = repair.dist_c;
        }
    }
}

/// V-instance semantics: fresh variables never collide with constants or
/// with each other, so substituting a fresh variable into a violating cell
/// always removes the violations that cell participates in.
#[test]
fn fresh_variables_break_equalities() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5000 + case);
        let mut inst = random_instance(&mut rng, 3, 10, 2);
        let row = rng.gen_range(0..inst.len());
        let attr = AttrId(rng.gen_range(0..3usize) as u16);
        let v = inst.fresh_var(attr);
        inst.set_cell(CellRef::new(row, attr), v).unwrap();
        for (other_row, other) in inst.tuples() {
            if other_row != row {
                assert!(
                    !inst.tuple(row).unwrap().get(attr).matches(other.get(attr)),
                    "case {case}"
                );
            }
        }
    }
}

/// The perturbation machinery only reports cells it really changed, and
/// every reported cell differs from the clean instance.
#[test]
fn perturbation_reports_exact_diff() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6000 + case);
        let seed = rng.gen_range(0..500u64);
        let data_error = rng.gen_range(0.0..0.02f64);
        let (clean, fds) = generate_census_like(&CensusLikeConfig {
            seed,
            ..CensusLikeConfig::single_fd(200, 8, 3)
        });
        let truth = perturb(
            &clean,
            &fds,
            &PerturbConfig {
                data_error_rate: data_error,
                fd_error_rate: 0.3,
                rhs_violation_fraction: 0.5,
                seed,
            },
        );
        let diff = truth.clean.diff(&truth.dirty).unwrap();
        assert_eq!(diff.distance(), truth.perturbed_cells.len(), "case {case}");
        for cell in &truth.perturbed_cells {
            assert_ne!(
                truth.clean.cell(*cell).unwrap(),
                truth.dirty.cell(*cell).unwrap(),
                "case {case}"
            );
        }
        // The dirty FDs are a relaxation-inverse of the clean ones: adding
        // back the removed attributes restores the clean FD set.
        let restored = truth.sigma_dirty.extend_lhs(&truth.removed_lhs_attrs);
        assert_eq!(restored, truth.sigma_clean, "case {case}");
    }
}
