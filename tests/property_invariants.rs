//! Property-based tests (proptest) over the core invariants of the repair
//! system, driven by randomly generated instances and FD sets.

use proptest::prelude::*;
use relative_trust::prelude::*;
use rt_graph::{exact_vertex_cover, matching_vertex_cover};

/// Strategy: a small random instance over `arity` attributes with values in
/// `[0, max_value)` — small domains so FD violations are frequent.
fn instance_strategy(
    arity: usize,
    max_rows: usize,
    max_value: i64,
) -> impl Strategy<Value = Instance> {
    prop::collection::vec(
        prop::collection::vec(0..max_value, arity),
        2..max_rows,
    )
    .prop_map(move |rows| {
        let schema = Schema::with_arity(arity).unwrap();
        Instance::from_int_rows(schema, &rows).unwrap()
    })
}

/// Strategy: a random FD set over `arity` attributes with 1..=max_fds FDs,
/// each with 1..=2 LHS attributes.
fn fdset_strategy(arity: usize, max_fds: usize) -> impl Strategy<Value = FdSet> {
    prop::collection::vec(
        (0..arity, 0..arity, prop::option::of(0..arity)),
        1..=max_fds,
    )
    .prop_map(move |specs| {
        let fds: Vec<Fd> = specs
            .into_iter()
            .map(|(lhs1, rhs, lhs2)| {
                let rhs = AttrId(rhs as u16);
                let mut lhs = AttrSet::singleton(AttrId(lhs1 as u16));
                if let Some(l2) = lhs2 {
                    lhs.insert(AttrId(l2 as u16));
                }
                let lhs = lhs.without(rhs);
                let lhs = if lhs.is_empty() {
                    // Ensure a non-trivial, non-empty LHS.
                    AttrSet::singleton(AttrId(((rhs.index() + 1) % arity) as u16))
                } else {
                    lhs
                };
                Fd::new(lhs, rhs)
            })
            .collect();
        FdSet::from_fds(fds)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Algorithm 4: the repaired instance always satisfies the FDs and never
    /// changes more than `|cover| · min(|R|-1, |Σ|)` cells (Theorem 3).
    #[test]
    fn data_repair_satisfies_fds_and_respects_bound(
        instance in instance_strategy(4, 14, 3),
        fds in fdset_strategy(4, 2),
        seed in 0u64..1000,
    ) {
        let out = repair_data(&instance, &fds, seed);
        prop_assert!(fds.holds_on(&out.repaired));
        let alpha = (instance.schema().arity() - 1).min(fds.len()).max(1);
        prop_assert!(out.distance() <= out.cover_size * alpha);
        // Tuple count never changes.
        prop_assert_eq!(out.repaired.len(), instance.len());
    }

    /// The matching-based vertex cover is a valid cover and within twice the
    /// optimum on small conflict graphs.
    #[test]
    fn vertex_cover_is_within_factor_two(
        instance in instance_strategy(3, 10, 2),
        fds in fdset_strategy(3, 2),
    ) {
        let cg = ConflictGraph::build(&instance, &fds);
        let graph = cg.to_graph();
        let approx = matching_vertex_cover(&graph);
        prop_assert!(graph.is_vertex_cover(&approx.clone().into_set()));
        if let Some(exact) = exact_vertex_cover(&graph, 200_000) {
            prop_assert!(approx.len() <= 2 * exact.len().max(1));
            prop_assert!(exact.len() <= approx.len());
        }
    }

    /// Conflict-graph filtering by difference sets agrees with rebuilding the
    /// conflict graph from scratch for relaxed FD sets.
    #[test]
    fn subgraph_filtering_matches_rebuild(
        instance in instance_strategy(4, 12, 3),
        fds in fdset_strategy(4, 2),
        extension_attr in 0usize..4,
    ) {
        let cg = ConflictGraph::build(&instance, &fds);
        // Relax every FD by appending one attribute (when legal).
        let extensions: Vec<AttrSet> = fds
            .iter()
            .map(|(_, fd)| {
                let a = AttrId(extension_attr as u16);
                if fd.rhs == a || fd.lhs.contains(a) {
                    AttrSet::EMPTY
                } else {
                    AttrSet::singleton(a)
                }
            })
            .collect();
        let relaxed = fds.extend_lhs(&extensions);
        let filtered = cg.subgraph_for(&relaxed);
        let rebuilt = ConflictGraph::build(&instance, &relaxed).to_graph();
        let filtered_edges: Vec<(usize, usize)> = filtered.edges().collect();
        let rebuilt_edges: Vec<(usize, usize)> = rebuilt.edges().collect();
        prop_assert_eq!(filtered_edges, rebuilt_edges);
    }

    /// Algorithm 1: the τ-constrained repair satisfies its FDs, stays within
    /// the budget, and its FD distance is non-increasing in τ.
    #[test]
    fn tau_constrained_repairs_are_sound_and_monotone(
        instance in instance_strategy(4, 12, 2),
        fds in fdset_strategy(4, 2),
    ) {
        let problem = RepairProblem::with_weight(&instance, &fds, WeightKind::AttrCount);
        let budget = problem.delta_p_original();
        let mut previous = f64::INFINITY;
        for tau in 0..=budget {
            let Some(repair) = repair_data_fds(&problem, tau) else { continue };
            prop_assert!(repair.modified_fds.holds_on(&repair.repaired_instance));
            prop_assert!(repair.delta_p <= tau);
            prop_assert!(repair.data_changes() <= repair.delta_p.max(tau));
            prop_assert!(fds.is_relaxation(&repair.modified_fds));
            prop_assert!(repair.dist_c <= previous + 1e-9);
            previous = repair.dist_c;
        }
    }

    /// V-instance semantics: fresh variables never collide with constants or
    /// with each other, so substituting a fresh variable into a violating
    /// cell always removes the violations that cell participates in.
    #[test]
    fn fresh_variables_break_equalities(
        instance in instance_strategy(3, 10, 2),
        row in 0usize..10,
        attr in 0usize..3,
    ) {
        let mut inst = instance.clone();
        let row = row % inst.len();
        let attr = AttrId(attr as u16);
        let v = inst.fresh_var(attr);
        inst.set_cell(CellRef::new(row, attr), v).unwrap();
        for (other_row, other) in inst.tuples() {
            if other_row != row {
                prop_assert!(!inst.tuple(row).unwrap().get(attr).matches(other.get(attr)));
            }
        }
    }

    /// The perturbation machinery only reports cells it really changed, and
    /// every reported cell differs from the clean instance.
    #[test]
    fn perturbation_reports_exact_diff(
        seed in 0u64..500,
        data_error in 0.0f64..0.02,
    ) {
        let (clean, fds) = generate_census_like(&CensusLikeConfig {
            seed,
            ..CensusLikeConfig::single_fd(200, 8, 3)
        });
        let truth = perturb(&clean, &fds, &PerturbConfig {
            data_error_rate: data_error,
            fd_error_rate: 0.3,
            rhs_violation_fraction: 0.5,
            seed,
        });
        let diff = truth.clean.diff(&truth.dirty).unwrap();
        prop_assert_eq!(diff.distance(), truth.perturbed_cells.len());
        for cell in &truth.perturbed_cells {
            prop_assert_ne!(
                truth.clean.cell(*cell).unwrap(),
                truth.dirty.cell(*cell).unwrap()
            );
        }
        // The dirty FDs are a relaxation-inverse of the clean ones: adding
        // back the removed attributes restores the clean FD set.
        let restored = truth.sigma_dirty.extend_lhs(&truth.removed_lhs_attrs);
        prop_assert_eq!(restored, truth.sigma_clean);
    }
}
