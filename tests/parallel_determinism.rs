//! The parallel execution layer's hard invariant: for every `Parallelism`
//! setting, every stage of the pipeline produces output bit-identical to the
//! serial path. Thread count may only change wall-clock time.
//!
//! Exercised on a generated 5k-tuple workload (conflict-heavy: one weakened
//! 6-attribute FD plus injected cell errors) and on the paper's Figure-2
//! example for the multi-FD corner cases.

use relative_trust::prelude::*;
use rt_bench::workloads::{Workload, WorkloadSpec};
use rt_core::data_repair::{repair_data_par, repair_data_with_cover_par};
use rt_core::repair::repair_data_fds_with;
use rt_graph::approx_vertex_cover_with;

const PARALLEL_SETTINGS: [Parallelism; 3] = [
    Parallelism::Fixed(2),
    Parallelism::Fixed(4),
    Parallelism::Auto,
];

fn workload_5k() -> Workload {
    Workload::build(&WorkloadSpec {
        tuples: 5000,
        attributes: 12,
        fd_count: 1,
        lhs_size: 6,
        data_error_rate: 0.01,
        fd_error_rate: 0.5,
        seed: 3,
    })
}

#[test]
fn conflict_graph_is_identical_across_parallelism_settings() {
    let w = workload_5k();
    let serial = ConflictGraph::build_with(w.dirty_instance(), w.dirty_fds(), Parallelism::Serial);
    assert!(
        !serial.is_empty(),
        "workload must actually produce conflicts"
    );
    // The Serial setting is also the default `build` path.
    assert_eq!(
        serial,
        ConflictGraph::build(w.dirty_instance(), w.dirty_fds())
    );
    for par in PARALLEL_SETTINGS {
        let parallel = ConflictGraph::build_with(w.dirty_instance(), w.dirty_fds(), par);
        assert_eq!(serial, parallel, "conflict graph diverged under {par:?}");
    }
}

#[test]
fn vertex_cover_is_identical_across_parallelism_settings() {
    let w = workload_5k();
    let graph = ConflictGraph::build(w.dirty_instance(), w.dirty_fds()).to_graph();
    let serial = approx_vertex_cover_with(&graph, Parallelism::Serial);
    assert!(!serial.is_empty());
    assert_eq!(serial, approx_vertex_cover(&graph));
    for par in PARALLEL_SETTINGS {
        assert_eq!(
            serial,
            approx_vertex_cover_with(&graph, par),
            "cover diverged under {par:?}"
        );
    }
}

#[test]
fn data_repair_is_identical_across_parallelism_settings() {
    let w = workload_5k();
    for seed in [0u64, 7] {
        let serial = repair_data_par(w.dirty_instance(), w.dirty_fds(), seed, Parallelism::Serial);
        assert!(w.dirty_fds().holds_on(&serial.repaired), "seed {seed}");
        for par in PARALLEL_SETTINGS {
            let parallel = repair_data_par(w.dirty_instance(), w.dirty_fds(), seed, par);
            assert_eq!(serial.repaired, parallel.repaired, "seed {seed}, {par:?}");
            assert_eq!(
                serial.changed_cells, parallel.changed_cells,
                "seed {seed}, {par:?}"
            );
            assert_eq!(
                serial.cover_size, parallel.cover_size,
                "seed {seed}, {par:?}"
            );
        }
    }
}

#[test]
fn end_to_end_repair_is_identical_across_parallelism_settings() {
    let w = workload_5k();
    let problem = RepairProblem::with_weight_par(
        w.dirty_instance(),
        w.dirty_fds(),
        WeightKind::DistinctCount,
        Parallelism::Auto,
    );
    let tau = problem.absolute_tau(0.3);
    let serial_config = SearchConfig {
        max_expansions: 10_000,
        parallelism: Parallelism::Serial,
        ..Default::default()
    };
    let serial = repair_data_fds_with(&problem, tau, &serial_config, SearchAlgorithm::AStar, 11)
        .expect("repair exists");
    for par in PARALLEL_SETTINGS {
        let config = SearchConfig {
            parallelism: par,
            ..serial_config
        };
        let parallel = repair_data_fds_with(&problem, tau, &config, SearchAlgorithm::AStar, 11)
            .expect("repair exists");
        assert_eq!(serial.modified_fds, parallel.modified_fds, "{par:?}");
        assert_eq!(
            serial.repaired_instance, parallel.repaired_instance,
            "{par:?}"
        );
        assert_eq!(serial.changed_cells, parallel.changed_cells, "{par:?}");
        assert_eq!(serial.delta_p, parallel.delta_p, "{par:?}");
        assert_eq!(
            serial.search_stats.states_expanded, parallel.search_stats.states_expanded,
            "search trajectory diverged under {par:?}"
        );
    }
}

#[test]
fn tau_sweep_is_identical_across_parallelism_settings() {
    // Figure-2: small enough to sweep every τ, multi-FD so relaxation
    // interactions are exercised.
    let schema = Schema::new("R", vec!["A", "B", "C", "D"]).unwrap();
    let inst = Instance::from_int_rows(
        schema.clone(),
        &[
            vec![1, 1, 1, 1],
            vec![1, 2, 1, 3],
            vec![2, 2, 1, 1],
            vec![2, 3, 4, 3],
        ],
    )
    .unwrap();
    let fds = FdSet::parse(&["A->B", "C->D"], &schema).unwrap();
    let problem = RepairProblem::with_weight(&inst, &fds, WeightKind::AttrCount);
    let hi = problem.delta_p_original();

    let serial_config = SearchConfig {
        parallelism: Parallelism::Serial,
        ..Default::default()
    };
    let serial_sweep = sampling_search(&problem, 0, hi, 1, &serial_config);
    let serial_range = RangeSearch::new(&problem, 0, hi, &serial_config).run_to_end();
    for par in PARALLEL_SETTINGS {
        let config = SearchConfig {
            parallelism: par,
            ..serial_config
        };
        let sweep = sampling_search(&problem, 0, hi, 1, &config);
        assert_eq!(serial_sweep.repairs.len(), sweep.repairs.len(), "{par:?}");
        for (a, b) in serial_sweep.repairs.iter().zip(sweep.repairs.iter()) {
            assert_eq!(a.repair.state, b.repair.state, "{par:?}");
            assert_eq!(a.tau_range, b.tau_range, "{par:?}");
        }
        let range = RangeSearch::new(&problem, 0, hi, &config).run_to_end();
        assert_eq!(serial_range.repairs.len(), range.repairs.len(), "{par:?}");
        for (a, b) in serial_range.repairs.iter().zip(range.repairs.iter()) {
            assert_eq!(a.repair.state, b.repair.state, "{par:?}");
            assert_eq!(a.tau_range, b.tau_range, "{par:?}");
        }
        // Materialization too.
        let serial_mat = serial_range.materialize_with(&problem, 5, Parallelism::Serial);
        let mat = range.materialize_with(&problem, 5, par);
        assert_eq!(serial_mat.len(), mat.len(), "{par:?}");
        for (a, b) in serial_mat.iter().zip(mat.iter()) {
            assert_eq!(a.repaired_instance, b.repaired_instance, "{par:?}");
            assert_eq!(a.changed_cells, b.changed_cells, "{par:?}");
        }
    }
}

#[test]
fn serial_fallback_handles_component_interactions() {
    // Overlapping FDs where repairing components in isolation *could* steer
    // two components into a fresh joint violation: the component-parallel
    // path must still return an instance satisfying Σ' (falling back to the
    // sequential algorithm when its post-merge validation fails), and stay
    // deterministic while doing so.
    let schema = Schema::new("R", vec!["Z", "W", "P", "Y"]).unwrap();
    let rows: Vec<Vec<i64>> = vec![
        vec![1, 10, 5, 100], // clean neighbours for component A
        vec![1, 11, 5, 101], // conflicts with row 0 on Z->W
        vec![2, 10, 5, 102], // clean neighbours for component B
        vec![2, 12, 5, 103], // conflicts with row 2 on Z->W
        vec![3, 13, 6, 104],
    ];
    let inst = Instance::from_int_rows(schema.clone(), &rows).unwrap();
    let fds = FdSet::parse(&["Z->W", "W,P->Y"], &schema).unwrap();
    for seed in 0..20u64 {
        let serial = repair_data_par(&inst, &fds, seed, Parallelism::Serial);
        assert!(
            fds.holds_on(&serial.repaired),
            "seed {seed}: serial repair must satisfy Σ'"
        );
        for par in PARALLEL_SETTINGS {
            let parallel = repair_data_par(&inst, &fds, seed, par);
            assert!(fds.holds_on(&parallel.repaired), "seed {seed}, {par:?}");
            assert_eq!(serial.repaired, parallel.repaired, "seed {seed}, {par:?}");
        }
    }
}

#[test]
fn explicit_cover_path_matches_across_settings() {
    let w = workload_5k();
    let graph = ConflictGraph::build(w.dirty_instance(), w.dirty_fds()).to_graph();
    let cover: Vec<usize> = approx_vertex_cover(&graph).iter().collect();
    let serial = repair_data_with_cover_par(
        w.dirty_instance(),
        w.dirty_fds(),
        &cover,
        9,
        Parallelism::Serial,
    );
    for par in PARALLEL_SETTINGS {
        let parallel =
            repair_data_with_cover_par(w.dirty_instance(), w.dirty_fds(), &cover, 9, par);
        assert_eq!(serial.repaired, parallel.repaired, "{par:?}");
    }
}
