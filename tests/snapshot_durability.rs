//! Engine snapshot durability: a restored engine is bit-identical to the
//! original without ever rebuilding the conflict graph, and corrupt or
//! truncated snapshot bytes always fail typed — never panic.

use relative_trust::prelude::*;
use rt_engine::{crc32, SNAPSHOT_MAGIC};

/// The Figure-2 instance of the paper.
fn figure2() -> (Instance, FdSet) {
    let schema = Schema::new("R", vec!["A", "B", "C", "D"]).unwrap();
    let instance = Instance::from_int_rows(
        schema.clone(),
        &[
            vec![1, 1, 1, 1],
            vec![1, 2, 1, 3],
            vec![2, 2, 1, 1],
            vec![2, 3, 4, 3],
        ],
    )
    .unwrap();
    let fds = FdSet::parse(&["A->B", "C->D"], &schema).unwrap();
    (instance, fds)
}

fn figure2_engine() -> RepairEngine {
    let (instance, fds) = figure2();
    RepairEngine::builder(instance, fds)
        .weight(WeightKind::AttrCount)
        .build()
        .unwrap()
}

#[test]
fn crc32_matches_known_vectors() {
    // The classic IEEE check value.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32(b""), 0);
}

#[test]
fn restore_is_bit_identical_and_never_rebuilds_the_graph() {
    let engine = figure2_engine();
    let spectrum = engine.spectrum().unwrap();

    let bytes = engine.snapshot().unwrap();
    assert_eq!(&bytes[..8], SNAPSHOT_MAGIC);

    let restored = RepairEngine::restore(&bytes).unwrap();
    assert_eq!(
        restored.stats().conflict_graph_builds,
        0,
        "a restored engine adopts the snapshot's conflict graph verbatim"
    );
    let restored_spectrum = restored.spectrum().unwrap();
    assert!(
        spectrum.bit_identical(&restored_spectrum),
        "restored spectrum must be bit-identical to the original"
    );
    // Querying the restored engine still never builds a graph.
    assert_eq!(restored.stats().conflict_graph_builds, 0);
}

#[test]
fn snapshot_survives_a_second_generation() {
    // snapshot(restore(snapshot(e))) must describe the same engine.
    let engine = figure2_engine();
    let spectrum = engine.spectrum().unwrap();
    let first = engine.snapshot().unwrap();
    let second = RepairEngine::restore(&first).unwrap().snapshot().unwrap();
    let grandchild = RepairEngine::restore(&second).unwrap();
    assert!(spectrum.bit_identical(&grandchild.spectrum().unwrap()));
    assert_eq!(grandchild.stats().conflict_graph_builds, 0);
}

#[test]
fn restore_preserves_mutated_state() {
    let mut engine = figure2_engine();
    engine
        .apply(
            &MutationBatch::new()
                .insert_row(vec![
                    Value::int(7),
                    Value::int(7),
                    Value::int(1),
                    Value::int(2),
                ])
                .update_cell(CellRef::new(1, AttrId(1)), Value::int(9)),
        )
        .unwrap();
    let spectrum = engine.spectrum().unwrap();

    let restored = RepairEngine::restore(&engine.snapshot().unwrap()).unwrap();
    assert!(spectrum.bit_identical(&restored.spectrum().unwrap()));
    assert_eq!(restored.stats().conflict_graph_builds, 0);
    // Counters carried over: the original ran one mutation batch.
    assert_eq!(restored.stats().mutation_batches, 1);
}

#[test]
fn restore_carries_the_suspended_sweep_checkpoint() {
    let engine = figure2_engine();
    // Materialize only part of the range, leaving a suspended checkpoint.
    let mut stream = engine.sweep(0..=engine.delta_p_original());
    let first = stream.next().unwrap().unwrap();
    drop(stream);

    let restored = RepairEngine::restore(&engine.snapshot().unwrap()).unwrap();
    // Resuming on the restored engine replays the same points the original
    // would have produced, from the same checkpoint.
    let original: Vec<_> = engine
        .sweep(0..=engine.delta_p_original())
        .map(|p| p.unwrap())
        .collect();
    let resumed: Vec<_> = restored
        .sweep(0..=restored.delta_p_original())
        .map(|p| p.unwrap())
        .collect();
    assert_eq!(original.len(), resumed.len());
    assert_eq!(first.tau_range, original[0].tau_range);
    for (a, b) in original.iter().zip(&resumed) {
        assert_eq!(a.tau_range, b.tau_range);
        assert_eq!(a.repair.data_changes(), b.repair.data_changes());
    }
    assert_eq!(restored.stats().conflict_graph_builds, 0);
    // The checkpoint resume shows up as a sweep-cache hit on both sides.
    assert_eq!(
        engine.stats().sweep_cache_hits,
        restored.stats().sweep_cache_hits
    );
}

#[test]
fn every_truncation_fails_typed() {
    let bytes = figure2_engine().snapshot().unwrap();
    for len in 0..bytes.len() {
        let err = RepairEngine::restore(&bytes[..len])
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} bytes must not restore"));
        assert!(
            matches!(err, EngineError::Snapshot(_)),
            "truncation to {len} bytes: got {err:?}"
        );
    }
}

#[test]
fn corrupt_bytes_fail_typed_and_never_panic() {
    let bytes = figure2_engine().snapshot().unwrap();
    // Flip one bit in every byte position; restore must either fail with the
    // typed snapshot error or (never) succeed silently — a flipped payload
    // byte is caught by the section CRC, a flipped header byte by framing.
    for pos in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x40;
        if let Err(err) = RepairEngine::restore(&corrupt) {
            assert!(
                matches!(err, EngineError::Snapshot(_)),
                "flip at {pos}: got {err:?}"
            );
        } else {
            panic!("bit flip at byte {pos} restored successfully");
        }
    }
}

#[test]
fn wrong_magic_and_version_fail_typed() {
    let bytes = figure2_engine().snapshot().unwrap();

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    let err = RepairEngine::restore(&wrong_magic).unwrap_err();
    assert!(err.to_string().contains("magic"), "got {err}");

    let mut wrong_version = bytes;
    wrong_version[8] = 0xFF;
    let err = RepairEngine::restore(&wrong_version).unwrap_err();
    assert!(err.to_string().contains("version"), "got {err}");

    let err = RepairEngine::restore(b"").unwrap_err();
    assert!(matches!(err, EngineError::Snapshot(_)));
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = figure2_engine().snapshot().unwrap();
    bytes.extend_from_slice(b"junk");
    let err = RepairEngine::restore(&bytes).unwrap_err();
    assert!(err.to_string().contains("trailing"), "got {err}");
}
