//! The code-path ≡ value-path contract of the dictionary-encoding layer.
//!
//! PR 4 moved every equality hot path — conflict-graph blocking, stripped
//! partitions, FD partition indexes, the data-repair clean index — from
//! `Vec<Value>` keys onto per-attribute dictionary codes
//! ([`relative_trust::relation::Instance::codes`]). The hard invariant,
//! mirroring the parallel ≡ serial and incremental ≡ rebuild contracts of
//! PRs 1–3: the code-keyed paths are **bit-identical** to value-level
//! semantics ([`Value::matches`]) —
//!
//! * partition classes and conflict graphs equal naive value-keyed
//!   reference implementations (re-implemented here, on values, as the
//!   oracle);
//! * full repair spectra do not depend on *which* codes the dictionary
//!   assigned (instances with scrambled interning orders produce
//!   bit-identical spectra);
//! * under random mutation streams the incrementally maintained encoding
//!   stays decode-faithful and the engine stays bit-identical to a fresh
//!   rebuild with `conflict_graph_builds == 1`.
//!
//! The harness shape (seeded 24/48-case loops over random instances, FD
//! sets and mutation streams) follows `tests/incremental.rs`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relative_trust::constraints::{PartitionStore, StrippedPartition};
use relative_trust::datagen::{generate_mutation_stream, MutationStreamConfig};
use relative_trust::prelude::*;
use relative_trust::relation::{AttrId, Tuple, Value};
use std::collections::HashMap;

/// A random instance mixing integer, string and null cells over small
/// domains (so FDs actually conflict and strings actually collide).
fn random_instance(rng: &mut StdRng) -> Instance {
    let arity = rng.gen_range(4..6usize);
    let rows = rng.gen_range(8..19usize);
    let names: Vec<String> = (0..arity).map(|a| format!("A{a}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let schema = Schema::new("R", name_refs).unwrap();
    let mut instance = Instance::new(schema);
    for _ in 0..rows {
        let cells: Vec<Value> = (0..arity)
            .map(|_| match rng.gen_range(0..4u32) {
                0 => Value::Null,
                1 => Value::int(rng.gen_range(0..3i64)),
                2 => Value::str(["x", "y", "z"][rng.gen_range(0..3usize)]),
                _ => Value::int(rng.gen_range(0..2i64)),
            })
            .collect();
        instance.push(Tuple::new(cells)).unwrap();
    }
    // Sprinkle V-instance variables: some repeated (sharing a class), some
    // unique.
    for _ in 0..rng.gen_range(0..3usize) {
        let attr = AttrId(rng.gen_range(0..arity) as u16);
        let var = instance.fresh_var(attr);
        for _ in 0..rng.gen_range(1..3usize) {
            let row = rng.gen_range(0..rows);
            instance
                .set_cell(
                    relative_trust::relation::CellRef::new(row, attr),
                    var.clone(),
                )
                .unwrap();
        }
    }
    instance
}

/// A random FD set: two FDs with 1–2 LHS attributes.
fn random_fds(rng: &mut StdRng, arity: usize) -> FdSet {
    let mut fds = FdSet::new();
    for _ in 0..2 {
        let rhs = rng.gen_range(0..arity);
        let lhs_size = rng.gen_range(1..3usize);
        let mut lhs = AttrSet::new();
        while lhs.len() < lhs_size {
            let a = rng.gen_range(0..arity);
            if a != rhs {
                lhs.insert(AttrId(a as u16));
            }
        }
        fds.push(Fd::new(lhs, AttrId(rhs as u16)));
    }
    fds
}

/// Value-level oracle for stripped partitions: group rows by their
/// `Vec<Value>` projection, drop singletons, order classes by first row.
fn value_partition_classes(instance: &Instance, attrs: AttrSet) -> Vec<Vec<usize>> {
    let attr_vec = attrs.to_vec();
    let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (row, tuple) in instance.tuples() {
        let key: Vec<Value> = attr_vec.iter().map(|a| tuple.get(*a).clone()).collect();
        groups.entry(key).or_default().push(row);
    }
    let mut classes: Vec<Vec<usize>> = groups.into_values().filter(|c| c.len() > 1).collect();
    classes.sort_unstable_by_key(|c| c[0]);
    classes
}

/// Value-level oracle for the conflict graph: the quadratic definition —
/// one edge per pair violating at least one FD, labelled via the
/// value-level [`FdSet::violated_by`] and [`Tuple::differing_attrs`].
fn value_conflict_edges(
    instance: &Instance,
    fds: &FdSet,
) -> Vec<((usize, usize), Vec<usize>, AttrSet)> {
    let mut edges = Vec::new();
    for u in 0..instance.len() {
        for v in (u + 1)..instance.len() {
            let tu = instance.tuple_unchecked(u);
            let tv = instance.tuple_unchecked(v);
            let violated = fds.violated_by(tu, tv);
            if !violated.is_empty() {
                edges.push((
                    (u, v),
                    violated,
                    AttrSet::from_attrs(tu.differing_attrs(tv)),
                ));
            }
        }
    }
    edges
}

/// The maintained encoding is decode-faithful: every cell's stored code
/// decodes back to exactly the cell's value, for every attribute and row.
/// (Interning assigns distinct codes to distinct values, so decode
/// faithfulness implies code equality ⟺ `Value::matches`.)
fn assert_encoding_faithful(instance: &Instance, context: &str) {
    for attr in instance.schema().attr_ids() {
        let dict = instance.dict(attr);
        let codes = instance.codes(attr);
        assert_eq!(codes.len(), instance.len(), "{context}: column length");
        for (row, tuple) in instance.tuples() {
            assert_eq!(
                &dict.decode(codes[row]),
                tuple.get(attr),
                "{context}: cell ({row}, {attr}) decodes wrong"
            );
        }
    }
}

fn assert_spectra_identical(a: &Spectrum, b: &Spectrum, context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: spectrum sizes differ");
    assert!(a.bit_identical(b), "{context}: spectra differ");
}

fn build(instance: Instance, fds: FdSet, weight: WeightKind, seed: u64) -> RepairEngine {
    RepairEngine::builder(instance, fds)
        .weight(weight)
        .parallelism(Parallelism::Serial)
        .max_expansions(100_000)
        .seed(seed)
        .build()
        .unwrap()
}

/// Partitions: code-keyed compute/refine and the cached store all equal the
/// value-level oracle on random instances (including V-instance variables).
#[test]
fn partition_classes_match_value_oracle() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xD1C7 + case);
        let instance = random_instance(&mut rng);
        let arity = instance.schema().arity();
        let mut store = PartitionStore::new(arity);
        for _ in 0..4 {
            let size = rng.gen_range(1..4usize);
            let mut attrs = AttrSet::new();
            while attrs.len() < size {
                attrs.insert(AttrId(rng.gen_range(0..arity) as u16));
            }
            let context = format!("case {case}, attrs {attrs}");
            let expected = value_partition_classes(&instance, attrs);
            let computed = StrippedPartition::compute(&instance, attrs);
            let got: Vec<Vec<usize>> = computed.classes().map(<[usize]>::to_vec).collect();
            assert_eq!(got, expected, "{context}: compute");
            // The store's TANE-style refinement is bit-identical to the
            // direct computation (same classes, same order).
            assert_eq!(
                store.partition(&instance, attrs),
                computed,
                "{context}: store"
            );
            // Refining by a further attribute equals direct computation too.
            let extra = AttrId(rng.gen_range(0..arity) as u16);
            if !attrs.contains(extra) {
                assert_eq!(
                    computed.refine(&instance, AttrSet::singleton(extra)),
                    StrippedPartition::compute(&instance, attrs.with(extra)),
                    "{context}: refine by {extra}"
                );
            }
        }
        assert!(store.cached_singles() <= arity);
    }
}

/// Conflict graphs: the code-keyed blocking build equals the quadratic
/// value-level definition — rows, FD labels and difference sets.
#[test]
fn conflict_graphs_match_value_oracle() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xC0DE + case);
        let instance = random_instance(&mut rng);
        let fds = random_fds(&mut rng, instance.schema().arity());
        let context = format!("case {case}");
        let graph = relative_trust::constraints::ConflictGraph::build(&instance, &fds);
        let got: Vec<((usize, usize), Vec<usize>, AttrSet)> = graph
            .edges()
            .iter()
            .map(|e| (e.rows, e.violated_fds.clone(), e.difference_set))
            .collect();
        assert_eq!(got, value_conflict_edges(&instance, &fds), "{context}");
        assert_encoding_faithful(&instance, &context);
    }
}

/// Repair spectra must not depend on which codes the dictionaries assigned:
/// an instance whose dictionaries interned extra values first (scrambled
/// code order) is logically equal and produces a bit-identical spectrum.
#[test]
fn spectra_are_invariant_under_code_assignment_order() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x5C4A + case);
        let instance = random_instance(&mut rng);
        let fds = random_fds(&mut rng, instance.schema().arity());
        let context = format!("case {case}");

        // Re-build the same logical instance with a polluted interning
        // order: push scrap rows first (interning unrelated values), delete
        // them, then push the real tuples. Codes now differ; content and
        // variable counters do not.
        let mut scrambled = Instance::new(instance.schema().clone());
        for i in 0..3i64 {
            let scrap: Vec<Value> = (0..instance.schema().arity())
                .map(|a| Value::int(1000 + i * 17 + a as i64))
                .collect();
            scrambled.push(Tuple::new(scrap)).unwrap();
        }
        scrambled.remove_rows(&[0, 1, 2]).unwrap();
        for (_, tuple) in instance.tuples() {
            scrambled.push(tuple.clone()).unwrap();
        }
        for attr in instance.schema().attr_ids() {
            for _ in 0..instance.dict(attr).var_count() {
                // Keep the fresh-variable counters aligned with the
                // original so downstream variable allocation matches.
                scrambled.fresh_var(attr);
            }
        }
        assert_eq!(scrambled, instance, "{context}: logical content differs");
        assert_ne!(
            (0..instance.len())
                .map(|r| instance.code_at(r, AttrId(0)))
                .collect::<Vec<_>>(),
            (0..scrambled.len())
                .map(|r| scrambled.code_at(r, AttrId(0)))
                .collect::<Vec<_>>(),
            "{context}: scrambling did not change the codes"
        );
        assert_encoding_faithful(&scrambled, &context);

        let a = build(instance, fds.clone(), WeightKind::DistinctCount, case);
        let b = build(scrambled, fds, WeightKind::DistinctCount, case);
        assert_spectra_identical(&a.spectrum().unwrap(), &b.spectrum().unwrap(), &context);
    }
}

/// Mutation streams: the incrementally maintained encoding stays
/// decode-faithful, and the engine's spectrum stays bit-identical to a
/// fresh rebuild on the mutated inputs — with `conflict_graph_builds == 1`.
#[test]
fn mutation_streams_keep_encoding_and_spectra_identical() {
    let weights = [
        WeightKind::AttrCount,
        WeightKind::DistinctCount,
        WeightKind::Entropy,
    ];
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xD1C7_FEED + case);
        let instance = random_instance(&mut rng);
        let fds = random_fds(&mut rng, instance.schema().arity());
        let weight = weights[(case % 3) as usize];
        let context = format!("case {case} ({weight:?})");

        let mut engine = build(instance.clone(), fds.clone(), weight, case);
        let ops = generate_mutation_stream(
            &instance,
            &fds,
            &MutationStreamConfig {
                ops: rng.gen_range(5..11usize),
                // Fresh values force new dictionary entries mid-session.
                fresh_value_rate: 0.5,
                seed: 0xBEEF + case,
                ..Default::default()
            },
        );
        for op in &ops {
            engine
                .apply(&MutationBatch::new().push(op.clone()))
                .unwrap_or_else(|e| panic!("{context}: {e}"));
        }

        // The mutated instance's encoding is still exact, cell by cell.
        assert_encoding_faithful(engine.problem().instance(), &context);
        // Dictionaries only grow (append-only), and the stats surface
        // tracks their footprint.
        let stats = engine.stats();
        assert_eq!(
            stats.dict_entries,
            engine.problem().instance().dict_entries(),
            "{context}: stats out of step"
        );

        let fresh = build(
            engine.problem().instance().clone(),
            engine.problem().sigma().clone(),
            weight,
            case,
        );
        assert_eq!(
            engine.problem().conflict_graph(),
            fresh.problem().conflict_graph(),
            "{context}: conflict graphs differ"
        );
        assert_spectra_identical(
            &engine
                .spectrum()
                .unwrap_or_else(|e| panic!("{context}: {e}")),
            &fresh
                .spectrum()
                .unwrap_or_else(|e| panic!("{context}: {e}")),
            &context,
        );
        assert_eq!(
            engine.stats().conflict_graph_builds,
            1,
            "{context}: graph was rebuilt"
        );
    }
}

/// Spot check of the reserved variable range: variables land above
/// `VAR_CODE_BASE`, constants below, and shared variables share a class in
/// the code-keyed partition exactly like the value-level semantics demand.
#[test]
fn variable_codes_respect_the_reserved_range() {
    use relative_trust::relation::{AttrDict, CellRef, VAR_CODE_BASE};
    let schema = Schema::new("R", vec!["A", "B"]).unwrap();
    let mut instance =
        Instance::from_int_rows(schema, &[vec![1, 1], vec![1, 2], vec![1, 3]]).unwrap();
    let v = instance.fresh_var(AttrId(0));
    instance
        .set_cell(CellRef::new(1, AttrId(0)), v.clone())
        .unwrap();
    instance.set_cell(CellRef::new(2, AttrId(0)), v).unwrap();

    let codes = instance.codes(AttrId(0));
    assert!(codes[0] < VAR_CODE_BASE);
    assert!(AttrDict::is_var_code(codes[1]));
    assert_eq!(codes[1], codes[2], "same variable, same code");

    // Rows 1 and 2 share the variable → one class {1, 2}; row 0 is a
    // singleton. Identical to the value-level oracle.
    let p = StrippedPartition::compute(&instance, AttrSet::singleton(AttrId(0)));
    let got: Vec<Vec<usize>> = p.classes().map(<[usize]>::to_vec).collect();
    assert_eq!(got, vec![vec![1, 2]]);
    assert_eq!(
        got,
        value_partition_classes(&instance, AttrSet::singleton(AttrId(0)))
    );
}
