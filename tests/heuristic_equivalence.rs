//! The heuristic oracle suite: memoization and dominance pruning are pure
//! accelerations.
//!
//! Three contracts, mirroring the incremental ≡ rebuild loop of
//! `tests/incremental.rs`:
//!
//! 1. **Memoized ≡ unmemoized, value-for-value**: for random problems,
//!    [`HeuristicCache`] evaluations reproduce the uncached
//!    [`goal_cost_estimate`] bit-for-bit on every state of a traversal
//!    sample, at every `τ` — including repeat queries served from the cache
//!    and descending-`τ` queries derived from a recorded run.
//! 2. **Sweeps are knob-independent**: full spectra with the cache on/off
//!    and dominance pruning on/off are [`Spectrum::bit_identical`].
//! 3. **Admissibility on random problems**: against an exhaustive
//!    goal-enumeration oracle on ≤ 6-row instances, `gc(S)` never exceeds
//!    the true cheapest goal descendant and never prunes a state that still
//!    has one (extends `heuristic_is_admissible_on_figure2` beyond the
//!    paper's fixture).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relative_trust::core::heuristic::{goal_cost_estimate, HeuristicCache, HeuristicConfig};
use relative_trust::core::{RepairProblem, RepairState};
use relative_trust::prelude::*;
use relative_trust::relation::AttrId;

/// A random instance with small column domains, so FDs actually conflict.
fn random_instance(rng: &mut StdRng, max_rows: usize) -> Instance {
    let arity = rng.gen_range(4..6usize);
    let rows = rng.gen_range(4..max_rows + 1);
    let names: Vec<String> = (0..arity).map(|a| format!("A{a}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let schema = Schema::new("R", name_refs).unwrap();
    let data: Vec<Vec<i64>> = (0..rows)
        .map(|_| (0..arity).map(|_| rng.gen_range(0..3i64)).collect())
        .collect();
    Instance::from_int_rows(schema, &data).unwrap()
}

/// A random FD set: two FDs with 1–2 LHS attributes.
fn random_fds(rng: &mut StdRng, arity: usize) -> FdSet {
    let mut fds = FdSet::new();
    for _ in 0..2 {
        let rhs = rng.gen_range(0..arity);
        let lhs_size = rng.gen_range(1..3usize);
        let mut lhs = AttrSet::new();
        while lhs.len() < lhs_size {
            let a = rng.gen_range(0..arity);
            if a != rhs {
                lhs.insert(AttrId(a as u16));
            }
        }
        fds.push(Fd::new(lhs, AttrId(rhs as u16)));
    }
    fds
}

const WEIGHTS: [WeightKind; 3] = [
    WeightKind::AttrCount,
    WeightKind::DistinctCount,
    WeightKind::Entropy,
];

/// A breadth-first sample of the state space, capped so dense spaces stay
/// cheap while small spaces are covered whole.
fn sample_states(problem: &RepairProblem, cap: usize) -> Vec<RepairState> {
    let mut sample = vec![RepairState::root(problem.fd_count())];
    let mut i = 0;
    while i < sample.len() && sample.len() < cap {
        let children = sample[i].children(problem.sigma(), problem.arity());
        sample.extend(children);
        i += 1;
    }
    sample.truncate(cap);
    sample
}

/// Contract 1: the 48-case memoized ≡ unmemoized loop.
///
/// Each case evaluates a state sample through one long-lived cache, three
/// times per `τ` (cold, warm, warm-after-tighter-τ), walking `τ`
/// *downwards* like the sweep does — every answer must match the uncached
/// oracle bit-for-bit, and the cache's hit/node ledger must add up.
#[test]
fn memoized_heuristic_matches_the_uncached_oracle() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0x6C0CA + case);
        let instance = random_instance(&mut rng, 18);
        let fds = random_fds(&mut rng, instance.schema().arity());
        let weight = WEIGHTS[(case % 3) as usize];
        let problem = RepairProblem::with_weight(&instance, &fds, weight);
        let config = HeuristicConfig::default();
        let context = format!("case {case} ({weight:?})");

        let states = sample_states(&problem, 40);
        let mut cache = HeuristicCache::new();
        let mut expected_nodes = 0usize;
        let mut expected_hits = 0usize;
        let taus: Vec<usize> = {
            let hi = problem.delta_p_original();
            [hi, hi.saturating_sub(1), hi / 2, 0]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .rev()
                .collect()
        };
        for tau in taus {
            for round in 0..2 {
                for state in &states {
                    let oracle = goal_cost_estimate(&problem, state, tau, &config);
                    let cached = cache.evaluate(&problem, state, tau, &config);
                    assert_eq!(
                        cached.lower_bound.map(f64::to_bits),
                        oracle.lower_bound.map(f64::to_bits),
                        "{context}: τ={tau} round {round} state {state}: \
                         cached gc diverged from the oracle"
                    );
                    expected_nodes += cached.nodes;
                    if cached.cache_hit {
                        expected_hits += 1;
                    } else {
                        assert_eq!(
                            cached.nodes, oracle.nodes,
                            "{context}: a miss must charge the oracle's node count"
                        );
                    }
                }
            }
        }
        // The accounting contract: the cache's own ledger is exactly the sum
        // of what the per-call values reported.
        assert_eq!(
            cache.nodes_spent(),
            expected_nodes,
            "{context}: node ledger"
        );
        assert_eq!(cache.hits(), expected_hits, "{context}: hit ledger");
        assert!(
            cache.hits() > 0,
            "{context}: repeat queries never hit the cache — the suite is vacuous"
        );
    }
}

fn engine_with(
    instance: &Instance,
    fds: &FdSet,
    weight: WeightKind,
    seed: u64,
    cache: bool,
    dominance: bool,
) -> RepairEngine {
    RepairEngine::builder(instance.clone(), fds.clone())
        .weight(weight)
        .parallelism(Parallelism::Serial)
        .max_expansions(100_000)
        .seed(seed)
        .heuristic_cache(cache)
        .dominance_pruning(dominance)
        .build()
        .unwrap()
}

/// Contract 2: full sweeps across the cache × dominance knob grid are
/// bit-identical — the accelerations change how much work the sweep does,
/// never what it records.
#[test]
fn sweeps_are_bit_identical_across_cache_and_dominance_knobs() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0x5EE7 + case);
        let instance = random_instance(&mut rng, 14);
        let fds = random_fds(&mut rng, instance.schema().arity());
        let weight = WEIGHTS[(case % 3) as usize];
        let context = format!("case {case} ({weight:?})");

        let reference = engine_with(&instance, &fds, weight, case, true, false)
            .spectrum()
            .unwrap_or_else(|e| panic!("{context}: {e}"));
        for (cache, dominance) in [(false, false), (false, true), (true, true)] {
            let spectrum = engine_with(&instance, &fds, weight, case, cache, dominance)
                .spectrum()
                .unwrap_or_else(|e| panic!("{context}: {e}"));
            assert!(
                reference.bit_identical(&spectrum),
                "{context}: cache={cache} dominance={dominance} changed the spectrum"
            );
        }
    }
}

/// Exhaustively enumerates the cheapest true goal descendant of `state` in
/// the search tree — the oracle for admissibility.
fn exact_cheapest_goal(problem: &RepairProblem, state: &RepairState, tau: usize) -> Option<f64> {
    let mut best: Option<f64> = None;
    let mut stack = vec![state.clone()];
    while let Some(s) = stack.pop() {
        if problem.is_goal(&s, tau) {
            let c = problem.dist_c(&s);
            best = Some(best.map_or(c, |b: f64| b.min(c)));
        }
        for c in s.children(problem.sigma(), problem.arity()) {
            stack.push(c);
        }
    }
    best
}

/// Contract 3: admissibility on randomized problems. Instances are capped
/// at 6 rows so the exhaustive oracle over every descendant stays cheap;
/// the heuristic may report a bound when no *tree* descendant is a goal
/// (it explores component-wise extensions, a superset), but must never
/// overshoot an existing goal's cost and never prune a state that has one.
#[test]
fn heuristic_is_admissible_on_random_problems() {
    let mut checked = 0usize;
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xAD15 + case);
        let instance = random_instance(&mut rng, 6);
        let fds = random_fds(&mut rng, instance.schema().arity());
        let weight = WEIGHTS[(case % 3) as usize];
        let problem = RepairProblem::with_weight(&instance, &fds, weight);
        let config = HeuristicConfig::default();
        let context = format!("case {case} ({weight:?})");

        let mut cache = HeuristicCache::new();
        let states = sample_states(&problem, 25);
        let taus = [
            0,
            problem.delta_p_original() / 2,
            problem.delta_p_original(),
        ];
        for state in &states {
            for tau in taus {
                let h = goal_cost_estimate(&problem, state, tau, &config);
                // The memoized path obeys the same admissibility bound.
                let cached = cache.evaluate(&problem, state, tau, &config);
                assert_eq!(
                    cached.lower_bound.map(f64::to_bits),
                    h.lower_bound.map(f64::to_bits),
                    "{context}: state {state} τ={tau}"
                );
                let exact = exact_cheapest_goal(&problem, state, tau);
                match (h.lower_bound, exact) {
                    (Some(lb), Some(opt)) => assert!(
                        lb <= opt + 1e-9,
                        "{context}: state {state} τ={tau}: gc={lb} exceeds optimum {opt}"
                    ),
                    (Some(_), None) => {}
                    (None, Some(opt)) => panic!(
                        "{context}: state {state} τ={tau}: pruned but a goal of cost {opt} exists"
                    ),
                    (None, None) => {}
                }
                checked += 1;
            }
        }
    }
    // 24 cases × ≤25 sampled states × 3 τ values, minus small state spaces
    // — 918 checks as seeded. The floor only guards against the sampler or
    // the τ grid silently collapsing.
    assert!(
        checked >= 900,
        "oracle coverage collapsed: {checked} checks"
    );
}
