//! Wire-protocol round trips: everything a client sees over a socket must
//! be bit-identical to what an in-process engine produces.
//!
//! These tests spin up a real `rt-server` on a loopback TCP port, drive it
//! with `rt-client`, and mirror every workload on a locally built
//! `RepairEngine`:
//!
//! * spectra compare with [`Spectrum::bit_identical`] — raw `f64` bits,
//!   dictionary codes, fresh-variable counters and all;
//! * each session builds its conflict graph exactly once
//!   (`conflict_graph_builds == 1`), mutations included;
//! * a seeded fuzz loop throws malformed, truncated and oversized frames
//!   at the socket and requires a typed error (never a hang, never a
//!   disconnect-without-reason) and a live server afterwards.

use relative_trust::engine::{decode_mutation_log, MutationBatch};
use relative_trust::io as rt_io;
use relative_trust::prelude::*;
use relative_trust::proto::MAX_FRAME_BYTES;
use relative_trust::scenarios::HOSPITAL_CSV;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

const HOSPITAL_FDS: [&str; 5] = [
    "zip->city",
    "zip->state",
    "provider_id->hospital_name",
    "provider_id->phone",
    "measure_code->measure_name",
];

/// Binds a server on an ephemeral loopback port, runs it on a worker
/// thread, and hands the caller a connected client plus the join handle.
fn loopback(
    config: ServerConfig,
) -> (
    Client,
    ServerHandle,
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind_tcp_with("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let worker = std::thread::spawn(move || server.run());
    let client = Client::connect(&addr.to_string()).unwrap();
    (client, handle, addr, worker)
}

fn opts() -> EngineOpts {
    let mut o = EngineOpts::new(7);
    o.threads = Parallelism::Serial;
    o
}

/// In-process twin of a wire session: same CSV text, same FDs, same
/// engine options.
fn local_engine(text: &str, fds: &[&str]) -> RepairEngine {
    let report =
        rt_io::read_instance(text.as_bytes(), &CsvOptions::csv().relation("input")).unwrap();
    let schema = report.instance.schema().clone();
    let sigma = FdSet::parse(fds, &schema).unwrap();
    opts()
        .configure(RepairEngine::builder(report.instance, sigma))
        .build()
        .unwrap()
}

/// The first `rows` data rows of the hospital fixture, as CSV text — big
/// enough to exercise dictionary codes, floats and nulls, small enough
/// for debug-build sweeps.
fn hospital_head(rows: usize) -> String {
    let mut lines = HOSPITAL_CSV.lines();
    let mut out = String::new();
    out.push_str(lines.next().unwrap());
    out.push('\n');
    for line in lines.take(rows) {
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[test]
fn wire_spectrum_is_bit_identical_to_in_process() {
    let (client, _handle, _addr, worker) = loopback(ServerConfig::default());

    let text = "A,B\n1,1\n1,2\n2,5\n2,5\n3,7\n";
    let mut session = client.create_session("twin", opts()).unwrap();
    let summary = session.load_csv(text, false, &["A->B"]).unwrap();
    assert_eq!(summary.rows, 5);
    assert_eq!(summary.attributes, vec!["A".to_string(), "B".to_string()]);

    let engine = local_engine(text, &["A->B"]);
    assert_eq!(summary.delta_p, engine.delta_p_original());

    // The full spectrum, the pointwise repairs, and the stats all agree.
    let wire = session.spectrum().unwrap();
    let local = engine.spectrum().unwrap();
    assert!(wire.bit_identical(&local), "wire spectrum diverged");

    let wire_repair = session.repair_at(1).unwrap();
    let local_repair = engine.repair_at(1).unwrap();
    assert_eq!(wire_repair.tau, local_repair.tau);
    assert_eq!(wire_repair.dist_c.to_bits(), local_repair.dist_c.to_bits());
    assert_eq!(wire_repair.changed_cells, local_repair.changed_cells);
    assert!(
        wire_repair.repaired_instance == local_repair.repaired_instance,
        "repaired instances (incl. var counters) must match"
    );

    let stats = session.stats().unwrap();
    assert_eq!(stats.conflict_graph_builds, 1);
    assert_eq!(
        stats.conflict_graph_builds,
        engine.stats().conflict_graph_builds
    );

    session.close().unwrap();
    client.shutdown().unwrap();
    worker.join().unwrap().unwrap();
}

#[test]
fn hospital_mutation_workload_stays_bit_identical_over_the_wire() {
    let (client, _handle, _addr, worker) = loopback(ServerConfig::default());
    let text = hospital_head(30);

    let mut session = client.create_session("hosp", opts()).unwrap();
    session.load_csv(&text, false, &HOSPITAL_FDS).unwrap();
    let mut engine = local_engine(&text, &HOSPITAL_FDS);

    // A mixed batch: corrupt a city (violating zip->city), add rows with a
    // fresh zip, and drop one FD — the same log applied on both sides.
    let ops_text = r#"[
        {"op": "update", "row": 2, "attr": "city", "value": "Mobile"},
        {"op": "insert", "rows": [
            [77001, "Bayou City Medical", "1 Main St", "Houston", "TX", 77001,
             "Harris", 7135550100, "AMI-1", "Aspirin at arrival", "Heart Attack", 88.5, 10],
            [77001, "Bayou City Medical", "1 Main St", "Austin", "TX", 77001,
             "Harris", 7135550100, "AMI-2", "Aspirin at discharge", "Heart Attack", 77.25, 12]
        ]},
        {"op": "remove_fd", "index": 4}
    ]"#;

    let (wire_effect, _) = session.apply_text(ops_text).unwrap();

    let doc = relative_trust::engine::json::parse(ops_text).unwrap();
    let decoded = decode_mutation_log(&doc, engine.problem().instance().schema()).unwrap();
    let local_outcome = engine
        .apply(&decoded.into_iter().collect::<MutationBatch>())
        .unwrap();
    assert_eq!(wire_effect, local_outcome.effect);

    let wire = session.spectrum().unwrap();
    let local = engine.spectrum().unwrap();
    assert!(
        wire.bit_identical(&local),
        "post-mutation wire spectrum diverged"
    );

    // Mutations maintain the graph incrementally on both sides of the wire.
    let stats = session.stats().unwrap();
    assert_eq!(stats.conflict_graph_builds, 1);
    assert_eq!(stats.mutation_batches, 1);
    assert_eq!(engine.stats().conflict_graph_builds, 1);

    session.close().unwrap();
    client.shutdown().unwrap();
    worker.join().unwrap().unwrap();
}

#[test]
fn sweep_pages_reassemble_the_exact_spectrum() {
    let (client, _handle, _addr, worker) = loopback(ServerConfig::default());
    let text = hospital_head(24);

    let mut session = client.create_session("paged", opts()).unwrap();
    let summary = session.load_csv(&text, false, &HOSPITAL_FDS).unwrap();
    let engine = local_engine(&text, &HOSPITAL_FDS);

    // Page through the sweep two points at a time and reassemble.
    let hi = summary.delta_p;
    let mut pages = Vec::new();
    let mut offset = 0;
    loop {
        let (points, done) = session.sweep_page(0, hi, offset, 2).unwrap();
        offset += points.len();
        pages.extend(points);
        if done {
            break;
        }
    }
    let local = engine.spectrum().unwrap();
    let paged = Spectrum {
        points: pages,
        search_stats: SearchStats::default(),
    };
    assert!(paged.bit_identical(&local), "paged spectrum diverged");

    // Pagination resumes the server-side sweep instead of restarting it.
    let stats = session.stats().unwrap();
    assert_eq!(stats.conflict_graph_builds, 1);
    assert_eq!(stats.sweeps_started, 1);

    session.close().unwrap();
    client.shutdown().unwrap();
    worker.join().unwrap().unwrap();
}

#[test]
fn closing_twice_is_a_typed_error_not_a_hang() {
    let (client, _handle, _addr, worker) = loopback(ServerConfig::default());
    let session = client.create_session("once", opts()).unwrap();
    let name = session.name().to_string();
    session.close().unwrap();

    let err = client
        .request(&Request::Close { session: name }, None)
        .unwrap_err();
    match err {
        ClientError::Protocol { code, .. } => assert_eq!(code, "unknown_session"),
        other => panic!("expected a protocol error, got {other}"),
    }

    client.shutdown().unwrap();
    worker.join().unwrap().unwrap();
}

/// Tiny deterministic generator for the fuzz loop (xorshift64*); the
/// protocol tests must not depend on ambient randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn malformed_frames_get_typed_errors_and_the_server_survives() {
    let (client, _handle, addr, worker) = loopback(ServerConfig::default());

    // A valid request to mutate: every case starts from this and breaks it.
    let valid = Request::Stats {
        session: "nope".to_string(),
    }
    .encode();

    let mut rng = Rng(0x5EED_CA5E);
    let mut stream = BufReader::new(TcpStream::connect(addr).unwrap());
    for case in 0..48 {
        let mut payload = match case % 4 {
            // Random garbage that is not JSON.
            0 => {
                let mut s = String::new();
                for _ in 0..(1 + rng.below(40)) {
                    // Printable non-brace ASCII, so it can never parse.
                    s.push((b'a' + rng.below(26) as u8) as char);
                }
                s
            }
            // Structurally valid JSON, wrong shape.
            1 => format!("{{\"type\": \"frob_{}\"}}", rng.below(1000)),
            // A valid frame with a chunk deleted.
            2 => {
                let cut = 1 + rng.below(valid.len() - 2);
                let mut s = valid.clone();
                s.replace_range(cut..valid.len().min(cut + 1 + rng.below(8)), "");
                s
            }
            // A valid frame with garbage injected mid-stream.
            _ => {
                let at = 1 + rng.below(valid.len() - 1);
                let mut s = valid.clone();
                s.insert_str(at, "\u{1}\u{2}garbage");
                s
            }
        };
        payload.retain(|c| c != '\n');

        stream.get_mut().write_all(payload.as_bytes()).unwrap();
        stream.get_mut().write_all(b"\n").unwrap();
        let mut line = String::new();
        stream.read_line(&mut line).unwrap();
        let response = Response::decode(line.trim_end(), None).unwrap();
        match response {
            Response::Error(frame) => assert!(
                frame.code == "malformed" || frame.code == "unknown_session",
                "case {case}: unexpected error code {} for payload {payload:?}",
                frame.code
            ),
            other => {
                // A mutated frame may still parse as a valid request; the
                // only valid non-error answer to a `stats` probe is stats.
                assert!(
                    matches!(other, Response::Stats(_)),
                    "case {case}: expected an error or stats, got {}",
                    other.kind()
                );
            }
        }
    }

    // One oversized frame: rejected with a typed error, connection intact.
    let huge = "x".repeat(MAX_FRAME_BYTES + 1);
    stream.get_mut().write_all(huge.as_bytes()).unwrap();
    stream.get_mut().write_all(b"\n").unwrap();
    let mut line = String::new();
    stream.read_line(&mut line).unwrap();
    match Response::decode(line.trim_end(), None).unwrap() {
        Response::Error(frame) => assert_eq!(frame.code, "oversized"),
        other => panic!("expected an oversized error, got {}", other.kind()),
    }

    // After all that abuse the same connection still answers correctly...
    stream
        .get_mut()
        .write_all((Request::Ping.encode() + "\n").as_bytes())
        .unwrap();
    line.clear();
    stream.read_line(&mut line).unwrap();
    assert!(matches!(
        Response::decode(line.trim_end(), None).unwrap(),
        Response::Pong
    ));

    // ...and so does a fresh client-side session.
    let mut session = client.create_session("alive", opts()).unwrap();
    session
        .load_csv("A,B\n1,1\n1,2\n", false, &["A->B"])
        .unwrap();
    assert!(!session.spectrum().unwrap().is_empty());
    session.close().unwrap();

    client.shutdown().unwrap();
    worker.join().unwrap().unwrap();
}
