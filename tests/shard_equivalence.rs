//! The shard ≡ monolithic contract of the scale-up build path.
//!
//! Hard invariant (mirroring the parallel ≡ serial and incremental ≡
//! rebuild contracts): an engine built with sharding forced on
//! (`ShardRows::Threshold(0)`) produces repairs, spectra and
//! search-trajectory stats **bit-identical** to a monolithic engine
//! (`ShardRows::Off`) on the same `(I, Σ)` — while its
//! `conflict_graph_builds` equals the shard count of the partition plan
//! (one per-shard build, never a monolithic one).
//!
//! The main test is a 48-case seeded property loop: random instances,
//! random FD sets, rotated across all three weighting functions, then
//! extended with mutation batches that *bridge* two shards (an update that
//! drags a row into another shard's blocking class), driving the
//! deterministic shard merge/re-split path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relative_trust::prelude::*;
use relative_trust::relation::AttrId;

/// A random instance whose LHS domains are wide enough that the blocking
/// closure genuinely fragments: most cases decompose into several shards.
fn random_instance(rng: &mut StdRng) -> Instance {
    let arity = rng.gen_range(4..6usize);
    let rows = rng.gen_range(16..40usize);
    let domain = rng.gen_range(5..9i64);
    let names: Vec<String> = (0..arity).map(|a| format!("A{a}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let schema = Schema::new("R", name_refs).unwrap();
    let data: Vec<Vec<i64>> = (0..rows)
        .map(|_| (0..arity).map(|_| rng.gen_range(0..domain)).collect())
        .collect();
    Instance::from_int_rows(schema, &data).unwrap()
}

/// A random FD set: two FDs with distinct RHSs and 1–2 LHS attributes.
fn random_fds(rng: &mut StdRng, arity: usize) -> FdSet {
    let mut fds = FdSet::new();
    for _ in 0..2 {
        let rhs = rng.gen_range(0..arity);
        let lhs_size = rng.gen_range(1..3usize);
        let mut lhs = AttrSet::new();
        while lhs.len() < lhs_size {
            let a = rng.gen_range(0..arity);
            if a != rhs {
                lhs.insert(AttrId(a as u16));
            }
        }
        fds.push(Fd::new(lhs, AttrId(rhs as u16)));
    }
    fds
}

fn build(
    instance: Instance,
    fds: FdSet,
    weight: WeightKind,
    seed: u64,
    shard_rows: ShardRows,
) -> RepairEngine {
    RepairEngine::builder(instance, fds)
        .weight(weight)
        .parallelism(Parallelism::Serial)
        .max_expansions(100_000)
        .seed(seed)
        .shard_rows(shard_rows)
        .build()
        .unwrap()
}

/// Field-by-field bit-identity, cross-checked against the engine's own
/// `Spectrum::bit_identical` predicate (same shape as the incremental
/// suite, so the two oracles can never drift in what they compare).
fn assert_spectra_identical(a: &Spectrum, b: &Spectrum, context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: spectrum sizes differ");
    for (i, (x, y)) in a.points.iter().zip(b.points.iter()).enumerate() {
        assert_eq!(x.tau_range, y.tau_range, "{context}: point {i} interval");
        assert_eq!(
            x.repair.delta_p, y.repair.delta_p,
            "{context}: point {i} δP"
        );
        assert_eq!(
            x.repair.dist_c.to_bits(),
            y.repair.dist_c.to_bits(),
            "{context}: point {i} dist_c"
        );
        assert_eq!(x.repair.state, y.repair.state, "{context}: point {i} state");
        assert_eq!(
            x.repair.modified_fds, y.repair.modified_fds,
            "{context}: point {i} Σ'"
        );
        assert_eq!(
            x.repair.repaired_instance, y.repair.repaired_instance,
            "{context}: point {i} I'"
        );
        assert_eq!(
            x.repair.changed_cells, y.repair.changed_cells,
            "{context}: point {i} Δd"
        );
    }
    assert!(a.bit_identical(b), "{context}: bit_identical disagrees");
}

/// A cell update that drags `victim` into `target`'s blocking class under
/// the first FD (copying the LHS cells) while keeping the RHS different —
/// i.e. a mutation that *bridges* two shards with a genuine conflict edge.
fn bridging_batch(instance: &Instance, fds: &FdSet, target: usize, victim: usize) -> MutationBatch {
    let fd = fds.get(0);
    let mut batch = MutationBatch::new();
    for attr in fd.lhs.iter() {
        let v = instance.tuple(target).unwrap().get(attr).clone();
        batch = batch.update_cell(CellRef::new(victim, attr), v);
    }
    let rhs_target = instance.tuple(target).unwrap().get(fd.rhs).clone();
    let rhs_victim = instance.tuple(victim).unwrap().get(fd.rhs).clone();
    if rhs_target == rhs_victim {
        // Same RHS would merely merge classes without a conflict; force one.
        batch = batch.update_cell(CellRef::new(victim, fd.rhs), Value::int(777_777));
    }
    batch
}

/// The 48-case seeded property loop, with shard-bridging mutations.
#[test]
fn sharded_matches_monolithic_on_random_cases() {
    let weights = [
        WeightKind::AttrCount,
        WeightKind::DistinctCount,
        WeightKind::Entropy,
    ];
    let mut multi_shard_cases = 0usize;
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0x5A4D + case);
        let instance = random_instance(&mut rng);
        let arity = instance.schema().arity();
        let fds = random_fds(&mut rng, arity);
        let weight = weights[(case % 3) as usize];
        let context = format!("case {case} ({weight:?})");

        let plan = ShardPlan::compute(&instance, &fds);
        let shard_count = plan.shard_count();
        if shard_count >= 2 {
            multi_shard_cases += 1;
        }

        let mut sharded = build(
            instance.clone(),
            fds.clone(),
            weight,
            case,
            ShardRows::Threshold(0),
        );
        let mut monolithic = build(instance.clone(), fds.clone(), weight, case, ShardRows::Off);

        // The accounting contract: one conflict-graph build *per shard*,
        // never a monolithic one — and exactly one for the oracle.
        assert_eq!(
            sharded.stats().conflict_graph_builds,
            shard_count,
            "{context}: sharded build count"
        );
        assert_eq!(sharded.stats().shards, shard_count, "{context}");
        assert_eq!(monolithic.stats().conflict_graph_builds, 1, "{context}");
        assert_eq!(monolithic.stats().shards, 0, "{context}");

        // The prepared state is literally identical.
        assert_eq!(
            sharded.problem().conflict_graph(),
            monolithic.problem().conflict_graph(),
            "{context}: conflict graphs differ"
        );

        // Every output matches bit-for-bit, including search trajectories.
        let s = sharded
            .spectrum()
            .unwrap_or_else(|e| panic!("{context}: {e}"));
        let m = monolithic
            .spectrum()
            .unwrap_or_else(|e| panic!("{context}: {e}"));
        assert_spectra_identical(&s, &m, &context);
        assert_eq!(
            sharded.stats().states_expanded,
            monolithic.stats().states_expanded,
            "{context}: search trajectory diverged"
        );
        assert_eq!(
            sharded.stats().states_generated,
            monolithic.stats().states_generated,
            "{context}"
        );
        for tau in [sharded.delta_p_original() / 2, sharded.delta_p_original()] {
            match (sharded.repair_at(tau), monolithic.repair_at(tau)) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.repaired_instance, b.repaired_instance,
                        "{context}: τ={tau}"
                    );
                    assert_eq!(a.changed_cells, b.changed_cells, "{context}: τ={tau}");
                    assert_eq!(a.modified_fds, b.modified_fds, "{context}: τ={tau}");
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{context}: τ={tau}"),
                (a, b) => panic!("{context}: τ={tau}: feasibility disagrees ({a:?} vs {b:?})"),
            }
        }

        // A mutation batch that bridges two shards: the sharded engine must
        // replan (merging the bridged shards) without ever rebuilding, and
        // stay bit-identical to the mutated monolithic engine.
        if shard_count >= 2 {
            let target = plan.shards()[0][0];
            let victim = plan.shards()[1][0];
            let batch = bridging_batch(&instance, &fds, target, victim);
            sharded
                .apply(&batch)
                .unwrap_or_else(|e| panic!("{context}: sharded bridge: {e}"));
            monolithic
                .apply(&batch)
                .unwrap_or_else(|e| panic!("{context}: monolithic bridge: {e}"));

            let replanned =
                ShardPlan::compute(sharded.problem().instance(), sharded.problem().sigma());
            assert_eq!(
                replanned.shard_of(target),
                replanned.shard_of(victim),
                "{context}: the bridge must merge the two shards"
            );
            let stats = sharded.stats();
            assert_eq!(
                stats.conflict_graph_builds, shard_count,
                "{context}: a mutation must never trigger a rebuild"
            );
            assert_eq!(stats.shard_replans, 1, "{context}");
            assert_eq!(stats.shards, replanned.shard_count(), "{context}");
            assert_eq!(stats.graph_rebuild_avoided, 1, "{context}");

            let s = sharded
                .spectrum()
                .unwrap_or_else(|e| panic!("{context}: {e}"));
            let m = monolithic
                .spectrum()
                .unwrap_or_else(|e| panic!("{context}: {e}"));
            assert_spectra_identical(&s, &m, &format!("{context} post-bridge"));

            // Deleting the bridge row re-splits the plan deterministically.
            let before_replans = sharded.stats().shard_replans;
            let delete = MutationBatch::new().delete_tuples(vec![victim]);
            sharded
                .apply(&delete)
                .unwrap_or_else(|e| panic!("{context}: sharded delete: {e}"));
            monolithic
                .apply(&delete)
                .unwrap_or_else(|e| panic!("{context}: monolithic delete: {e}"));
            let resplit =
                ShardPlan::compute(sharded.problem().instance(), sharded.problem().sigma());
            let stats = sharded.stats();
            assert_eq!(stats.shard_replans, before_replans + 1, "{context}");
            assert_eq!(stats.shards, resplit.shard_count(), "{context}");
            assert_eq!(stats.conflict_graph_builds, shard_count, "{context}");
            let s = sharded
                .spectrum()
                .unwrap_or_else(|e| panic!("{context}: {e}"));
            let m = monolithic
                .spectrum()
                .unwrap_or_else(|e| panic!("{context}: {e}"));
            assert_spectra_identical(&s, &m, &format!("{context} post-resplit"));
        }
    }
    // The loop must actually exercise sharding, not degenerate into
    // single-shard instances.
    assert!(
        multi_shard_cases >= 24,
        "only {multi_shard_cases}/48 cases produced ≥2 shards — generator drifted"
    );
}

/// Thread count must not leak into the partition or the merged graph.
#[test]
fn sharded_build_is_identical_across_parallelism_settings() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let instance = random_instance(&mut rng);
    let fds = random_fds(&mut rng, instance.schema().arity());
    let serial = RepairEngine::builder(instance.clone(), fds.clone())
        .parallelism(Parallelism::Serial)
        .shard_rows(ShardRows::Threshold(0))
        .build()
        .unwrap();
    for par in [
        Parallelism::Fixed(2),
        Parallelism::Fixed(4),
        Parallelism::Auto,
    ] {
        let parallel = RepairEngine::builder(instance.clone(), fds.clone())
            .parallelism(par)
            .shard_rows(ShardRows::Threshold(0))
            .build()
            .unwrap();
        assert_eq!(
            serial.problem().conflict_graph(),
            parallel.problem().conflict_graph(),
            "{par:?}"
        );
        assert_eq!(serial.stats().shards, parallel.stats().shards, "{par:?}");
    }
}

/// The scale smoke test: the warehouse scenario, sharded vs monolithic,
/// bit-identical over the gated sweep prefix. Row count honors
/// `RT_WAREHOUSE_ROWS` (CI runs the 100k-row variant in release; the debug
/// default stays small enough for `cargo test`).
#[test]
fn warehouse_sharded_matches_monolithic() {
    let rows: usize = std::env::var("RT_WAREHOUSE_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let scenario = relative_trust::scenarios::build(
        "warehouse",
        &ScenarioConfig {
            seed: 17,
            rows: Some(rows),
        },
    )
    .expect("warehouse scenario builds");

    let plan = ShardPlan::compute(&scenario.dirty, &scenario.dirty_fds);
    assert!(
        plan.shard_count() >= 2,
        "warehouse must decompose into region shards (got {})",
        plan.shard_count()
    );

    let sharded = build(
        scenario.dirty.clone(),
        scenario.dirty_fds.clone(),
        WeightKind::DistinctCount,
        17,
        ShardRows::Threshold(0),
    );
    let monolithic = build(
        scenario.dirty.clone(),
        scenario.dirty_fds.clone(),
        WeightKind::DistinctCount,
        17,
        ShardRows::Off,
    );
    assert_eq!(sharded.stats().conflict_graph_builds, plan.shard_count());
    assert_eq!(sharded.stats().shards, plan.shard_count());
    assert_eq!(
        sharded.problem().conflict_graph(),
        monolithic.problem().conflict_graph()
    );

    // The gated prefix of the τ-sweep (a full spectrum at this scale is a
    // bench-only exercise), bit-identical.
    let prefix = |engine: &RepairEngine| {
        let mut points = Vec::new();
        for point in engine.sweep(0..=engine.delta_p_original()).take(3) {
            points.push(point.expect("sweep point materializes"));
        }
        Spectrum {
            points,
            search_stats: Default::default(),
        }
    };
    let s = prefix(&sharded);
    let m = prefix(&monolithic);
    assert_spectra_identical(&s, &m, "warehouse prefix");
    assert!(!s.points.is_empty(), "prefix must materialize points");
}
