//! Cross-crate integration tests: the full pipeline from raw data and FDs to
//! scored repairs, exercised through the public facade.

use relative_trust::prelude::*;

/// The running example of the paper (Figure 1): an employee relation whose
/// FD `Surname, GivenName -> Income` is violated by both genuine errors and
/// by distinct people sharing a name.
fn employee_example() -> (Instance, FdSet) {
    let schema = Schema::new(
        "Persons",
        vec![
            "GivenName",
            "Surname",
            "BirthDate",
            "Gender",
            "Phone",
            "Income",
        ],
    )
    .unwrap();
    let rows: Vec<Vec<&str>> = vec![
        vec!["Jack", "White", "5 Jan 1980", "Male", "923-234-4532", "60k"],
        vec![
            "Sam",
            "McCarthy",
            "19 Jul 1945",
            "Male",
            "989-321-4232",
            "92k",
        ],
        vec![
            "Danielle",
            "Blake",
            "9 Dec 1970",
            "Female",
            "817-213-1211",
            "120k",
        ],
        vec![
            "Matthew",
            "Webb",
            "23 Aug 1985",
            "Male",
            "246-481-0992",
            "87k",
        ],
        vec![
            "Danielle",
            "Blake",
            "9 Dec 1970",
            "Female",
            "817-988-9211",
            "100k",
        ],
        vec!["Hong", "Li", "27 Oct 1972", "Female", "591-977-1244", "90k"],
        vec![
            "Jian",
            "Zhang",
            "14 Apr 1990",
            "Male",
            "912-143-4981",
            "55k",
        ],
        vec!["Ning", "Wu", "3 Nov 1982", "Male", "313-134-9241", "90k"],
        vec!["Hong", "Li", "8 Mar 1979", "Female", "498-214-5822", "84k"],
        vec!["Ning", "Wu", "8 Nov 1982", "Male", "323-456-3452", "95k"],
    ];
    let tuples: Vec<Tuple> = rows
        .iter()
        .map(|r| Tuple::new(r.iter().map(|v| Value::str(*v)).collect()))
        .collect();
    let instance = Instance::from_tuples(schema.clone(), tuples).unwrap();
    let fds = FdSet::parse(&["Surname,GivenName->Income"], &schema).unwrap();
    (instance, fds)
}

#[test]
fn figure1_employee_example_produces_the_expected_spectrum() {
    let (instance, fds) = employee_example();
    assert!(!fds.holds_on(&instance));

    let engine = RepairEngine::builder(instance.clone(), fds.clone())
        .seed(3)
        .build()
        .unwrap();
    // Three name clashes (Blake, Li, Wu) → three conflict edges, cover 3.
    assert_eq!(engine.problem().conflict_graph().edge_count(), 3);
    assert_eq!(engine.delta_p_original(), 3);

    let spectrum = engine.spectrum().unwrap();
    assert!(
        spectrum.len() >= 2,
        "expected at least a pure-data and a pure-FD repair"
    );

    // Extremes of the spectrum.
    let pure_data = &spectrum.points.first().unwrap().repair;
    assert!(pure_data.is_pure_data_repair());
    assert!(pure_data
        .modified_fds
        .holds_on(&pure_data.repaired_instance));
    let pure_fd = &spectrum.points.last().unwrap().repair;
    assert!(pure_fd.is_pure_fd_repair());
    assert!(pure_fd.modified_fds.holds_on(&instance));
    // The pure FD repair must extend the LHS (e.g. with BirthDate or Phone).
    assert!(pure_fd.modified_fds.get(0).lhs.len() > fds.get(0).lhs.len());

    // Every repair satisfies its own FDs and respects its τ interval.
    for point in &spectrum.points {
        assert!(point
            .repair
            .modified_fds
            .holds_on(&point.repair.repaired_instance));
        assert!(point.repair.data_changes() <= point.tau_range.1.max(point.tau_range.0));
    }
}

#[test]
fn pareto_frontier_is_non_dominated_and_monotone() {
    let (instance, fds) = employee_example();
    let engine = RepairEngine::builder(instance, fds)
        .seed(1)
        .build()
        .unwrap();
    let spectrum = engine.spectrum().unwrap();
    let repairs: Vec<&Repair> = spectrum.repairs().collect();

    for (i, a) in repairs.iter().enumerate() {
        for (j, b) in repairs.iter().enumerate() {
            if i == j {
                continue;
            }
            let dominates = b.dist_c <= a.dist_c
                && b.data_changes() <= a.data_changes()
                && (b.dist_c < a.dist_c || b.data_changes() < a.data_changes());
            assert!(!dominates, "repair {j} dominates repair {i}");
        }
    }
    // Ordered from data-heavy to FD-heavy: dist_c must be non-decreasing and
    // δP non-increasing.
    for pair in repairs.windows(2) {
        assert!(pair[0].dist_c <= pair[1].dist_c);
        assert!(pair[0].delta_p >= pair[1].delta_p);
    }
}

#[test]
fn generated_workload_round_trip_with_metrics() {
    // Generate → perturb → repair → evaluate, end to end through the facade.
    let (clean, sigma) = generate_census_like(&CensusLikeConfig::single_fd(600, 10, 4));
    assert!(sigma.holds_on(&clean));
    let truth = perturb(
        &clean,
        &sigma,
        &PerturbConfig {
            data_error_rate: 0.002,
            fd_error_rate: 0.5,
            rhs_violation_fraction: 0.5,
            seed: 12,
        },
    );
    assert!(!truth.sigma_dirty.holds_on(&truth.dirty));

    let engine = RepairEngine::new(truth.dirty.clone(), truth.sigma_dirty.clone()).unwrap();
    for tau_r in [0.0, 0.5, 1.0] {
        let repair = engine
            .repair_at_relative(tau_r)
            .unwrap_or_else(|e| panic!("no repair at τ_r = {tau_r}: {e}"));
        assert!(repair.modified_fds.holds_on(&repair.repaired_instance));
        let quality = evaluate_repair(&truth, &repair.modified_fds, &repair.repaired_instance);
        assert!((0.0..=1.0).contains(&quality.combined_f));
        assert!((0.0..=1.0).contains(&quality.data_precision));
        assert!((0.0..=1.0).contains(&quality.fd_recall));
    }
}

#[test]
fn relative_trust_dominates_unified_cost_on_fd_error_workload() {
    // The Figure 8 scenario where the difference is starkest: all the blame
    // lies with the FD (attributes were dropped), the data is clean.
    let (clean, sigma) = generate_census_like(&CensusLikeConfig::single_fd(500, 10, 4));
    let truth = perturb(
        &clean,
        &sigma,
        &PerturbConfig {
            data_error_rate: 0.0,
            fd_error_rate: 0.5,
            rhs_violation_fraction: 0.5,
            seed: 3,
        },
    );
    let engine = RepairEngine::new(truth.dirty.clone(), truth.sigma_dirty.clone()).unwrap();

    // Relative trust, τ = 0: keep the data, fix the FD.
    let rt = engine
        .repair_at_relative(0.0)
        .expect("pure FD repair exists");
    let rt_quality = evaluate_repair(&truth, &rt.modified_fds, &rt.repaired_instance);
    // Data untouched → perfect data scores.
    assert_eq!(rt_quality.data_precision, 1.0);
    assert_eq!(rt_quality.data_recall, 1.0);

    // Unified cost: single repair with its fixed trade-off, served by the
    // same engine session (same prepared conflict graph and weights).
    let unified = engine.unified_baseline(&UnifiedCostConfig::default());
    let unified_quality =
        evaluate_repair(&truth, &unified.modified_fds, &unified.repaired_instance);

    assert!(
        rt_quality.combined_f >= unified_quality.combined_f,
        "relative trust ({}) must not lose to unified cost ({}) when only the FD is wrong",
        rt_quality.combined_f,
        unified_quality.combined_f
    );
}

#[test]
fn csv_round_trip_feeds_the_repair_pipeline() {
    // Write the employee example to CSV, read it back, repair it.
    let (instance, fds) = employee_example();
    let mut buf = Vec::new();
    relative_trust::relation::csv::write_instance(&instance, &mut buf).unwrap();
    let reread = relative_trust::relation::csv::read_instance("Persons", buf.as_slice()).unwrap();
    assert_eq!(reread.len(), instance.len());

    let engine = RepairEngine::new(reread, fds).unwrap();
    let repair = engine.repair_at(engine.delta_p_original()).unwrap();
    assert!(repair.modified_fds.holds_on(&repair.repaired_instance));
}

#[test]
fn discovered_fds_hold_and_can_seed_the_pipeline() {
    // FD discovery on clean generated data: discovered FDs must include the
    // planted one, and repairing a perturbed instance against them works.
    let (clean, planted) = generate_census_like(&CensusLikeConfig::single_fd(300, 8, 3));
    let discovered = discover_fds(
        &clean,
        &DiscoveryConfig {
            max_lhs_size: 3,
            minimal_only: true,
            max_fds: Some(50),
        },
    );
    for (_, fd) in discovered.iter() {
        assert!(fd.holds_on(&clean), "discovered FD {fd} does not hold");
    }
    // The planted FD (or something implying it) is discoverable.
    let planted_fd = planted.get(0);
    assert!(
        discovered.implies(planted_fd),
        "discovered FDs {} do not imply the planted FD {}",
        discovered,
        planted_fd
    );
}

#[test]
fn sampling_and_range_repair_agree_through_the_facade() {
    let (instance, fds) = employee_example();
    let engine = RepairEngine::new(instance, fds).unwrap();
    let hi = engine.delta_p_original();
    let range = engine.sweep(0..=hi).collect_spectrum().unwrap();
    let sampling = engine.sampling_spectrum(0..=hi, 1);
    assert_eq!(range.len(), sampling.len());
    for (a, b) in range.points.iter().zip(sampling.points.iter()) {
        assert_eq!(a.repair.delta_p, b.repair.delta_p);
        assert!((a.repair.dist_c - b.repair.dist_c).abs() < 1e-9);
    }
}

/// The engine must stay a thin session over the `rt-core` primitives it
/// wraps (`repair_data_fds_with`, `RangeSearch`): both spellings produce
/// bit-identical repairs, so code driving the primitives directly stays
/// correct.
#[test]
fn core_primitives_match_the_engine() {
    use relative_trust::core::repair::repair_data_fds_with;
    use relative_trust::core::{RangeSearch, SearchAlgorithm};

    let (instance, fds) = employee_example();
    let problem = RepairProblem::new(&instance, &fds);
    let engine = RepairEngine::builder(instance.clone(), fds.clone())
        .build()
        .unwrap();
    let hi = engine.delta_p_original();
    assert_eq!(problem.delta_p_original(), hi);

    let config = SearchConfig::default();
    for tau in 0..=hi {
        let old = repair_data_fds_with(&problem, tau, &config, SearchAlgorithm::AStar, 0).unwrap();
        let new = engine.repair_at(tau).unwrap();
        assert_eq!(old.state, new.state, "τ={tau}");
        assert_eq!(old.modified_fds, new.modified_fds, "τ={tau}");
        assert_eq!(old.repaired_instance, new.repaired_instance, "τ={tau}");
        assert_eq!(old.changed_cells, new.changed_cells, "τ={tau}");
    }

    let old_spectrum = RangeSearch::new(&problem, 0, hi, &config)
        .run_to_end()
        .materialize(&problem, 0);
    let new_spectrum = engine.spectrum().unwrap();
    assert_eq!(old_spectrum.len(), new_spectrum.len());
    for (old, new) in old_spectrum.iter().zip(new_spectrum.repairs()) {
        assert_eq!(old.repaired_instance, new.repaired_instance);
        assert_eq!(old.changed_cells, new.changed_cells);
    }
}
