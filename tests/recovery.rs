//! Crash-safety: snapshot + WAL durability, recovery, client resilience.
//!
//! Three layers of proof, all seeded and deterministic:
//!
//! * a 48-case crash-recovery loop (workload seed × kill mode × restart):
//!   a durable server is killed mid-flight via an armed [`FaultPoint`],
//!   restarted on the same data dir, and the recovered session's spectrum
//!   must be [`Spectrum::bit_identical`] to an uninterrupted in-process
//!   twin that applied exactly the acknowledged mutations — with
//!   `conflict_graph_builds == 0` (recovery decodes and replays, it never
//!   rebuilds);
//! * client-resilience regressions through the `rt-chaos` proxy: a
//!   mid-frame disconnect is a typed [`ClientError::Io`] *immediately*,
//!   retries are deterministic, capped, and only ever cover idempotent
//!   requests;
//! * a seeded chaos fuzz sweep over [`ChaosPlan::from_seed`]: every
//!   injected wire fault yields a typed error or a clean result — zero
//!   hangs, zero panics — and the real server survives every run.

use relative_trust::engine::{decode_mutation_log, MutationBatch};
use relative_trust::io as rt_io;
use relative_trust::prelude::*;
use rt_chaos::{ChaosPlan, ChaosProxy, WireFault};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;

const BASE_CSV: &str = "A,B\n1,1\n1,2\n2,5\n2,5\n3,7\n3,8\n4,9\n4,9\n";
const BASE_FDS: [&str; 1] = ["A->B"];

/// Binds a server on an ephemeral loopback port, runs it on a worker
/// thread, and hands back a connected client plus handle and address.
fn loopback(
    config: ServerConfig,
) -> (
    Client,
    ServerHandle,
    SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind_tcp_with("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let worker = std::thread::spawn(move || server.run());
    let client = Client::connect(&addr.to_string()).unwrap();
    (client, handle, addr, worker)
}

fn opts() -> EngineOpts {
    let mut o = EngineOpts::new(7);
    o.threads = Parallelism::Serial;
    o
}

/// In-process twin of a wire session: same CSV text, same FDs, same
/// engine options.
fn local_engine(text: &str, fds: &[&str]) -> RepairEngine {
    let report =
        rt_io::read_instance(text.as_bytes(), &CsvOptions::csv().relation("input")).unwrap();
    let schema = report.instance.schema().clone();
    let sigma = FdSet::parse(fds, &schema).unwrap();
    opts()
        .configure(RepairEngine::builder(report.instance, sigma))
        .build()
        .unwrap()
}

fn apply_to_twin(twin: &mut RepairEngine, ops_text: &str) {
    let doc = relative_trust::engine::json::parse(ops_text).unwrap();
    let decoded = decode_mutation_log(&doc, twin.problem().instance().schema()).unwrap();
    twin.apply(&decoded.into_iter().collect::<MutationBatch>())
        .unwrap();
}

/// A fresh per-test data dir under the OS temp root; no timestamps — the
/// process id plus a tag keeps parallel test binaries apart.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rt-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        data_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

/// Tiny deterministic generator (xorshift64*), same as the protocol fuzz.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One seeded mutation batch as `apply` JSON text. Updates stay within the
/// eight base rows so batches compose regardless of interleaved inserts.
fn seeded_batch(rng: &mut Rng) -> String {
    let row = rng.below(8);
    let value = rng.below(9);
    if rng.below(4) == 0 {
        let a = rng.below(5);
        let b = rng.below(9);
        format!(
            "[{{\"op\": \"update\", \"row\": {row}, \"attr\": \"B\", \"value\": {value}}}, \
             {{\"op\": \"insert\", \"rows\": [[{a}, {b}]]}}]"
        )
    } else {
        format!("[{{\"op\": \"update\", \"row\": {row}, \"attr\": \"B\", \"value\": {value}}}]")
    }
}

/// How a server run is killed after the acknowledged workload.
#[derive(Debug, Clone, Copy)]
enum Kill {
    /// Clean shutdown (the wire `shutdown` request).
    Clean,
    /// Crash during snapshot rotation: the temp file is written and
    /// fsynced, the rename never happens — the WAL must carry everything.
    BeforeSnapshotRename,
    /// Crash halfway through a WAL append: the torn record was never
    /// acknowledged, so recovery must drop it.
    MidWalAppend,
}

/// An error from a fault-killed request: the server severs the connection
/// as it goes down, so the client sees a typed transport error (or, if the
/// reply raced out first, the `fault_injected` protocol code).
fn assert_crash_error(err: ClientError) {
    match err {
        ClientError::Io(_) => {}
        ClientError::Protocol { ref code, .. } if code == "fault_injected" => {}
        other => panic!("expected a crash-typed error, got {other}"),
    }
}

#[test]
fn seeded_crash_recovery_spectra_are_bit_identical_to_the_twin() {
    let kills = [Kill::Clean, Kill::BeforeSnapshotRename, Kill::MidWalAppend];
    let mut cases = 0;
    for seed in 0..16u64 {
        for kill in kills {
            cases += 1;
            let dir = temp_dir(&format!("case-{seed}-{cases}"));
            let mut rng = Rng(0x5EED_0000 + seed + 1);
            let mut twin = local_engine(BASE_CSV, &BASE_FDS);

            // --- First life: load, mutate, die. -------------------------
            let (client, handle, _addr, worker) = loopback(durable_config(&dir));
            let mut session = client.create_session("w", opts()).unwrap();
            session.load_csv(BASE_CSV, false, &BASE_FDS).unwrap();

            // `tail` tracks acked WAL records since the last rotation —
            // exactly what a restart must replay.
            let mut tail = 0usize;
            let batches = 1 + (seed % 3) as usize;
            for b in 0..batches {
                let ops = seeded_batch(&mut rng);
                session.apply_text(&ops).unwrap();
                apply_to_twin(&mut twin, &ops);
                tail += 1;
                if b == 0 && batches >= 2 && seed % 2 == 1 {
                    // A mid-workload rotation: snapshot absorbs the WAL.
                    session.snapshot().unwrap();
                    tail = 0;
                }
            }

            match kill {
                Kill::Clean => client.shutdown().unwrap(),
                Kill::BeforeSnapshotRename => {
                    assert!(handle.arm_fault(FaultPoint::BeforeSnapshotRename));
                    assert_crash_error(session.snapshot().unwrap_err());
                }
                Kill::MidWalAppend => {
                    assert!(handle.arm_fault(FaultPoint::MidWalAppend));
                    // This mutation is torn mid-record and never acked —
                    // the twin must not see it.
                    let doomed = seeded_batch(&mut rng);
                    assert_crash_error(session.apply_text(&doomed).unwrap_err());
                }
            }
            drop(session);
            drop(client);
            worker.join().unwrap().unwrap();

            // --- Second life: restart on the same dir, recover. ---------
            let (client, _handle, _addr, worker) = loopback(durable_config(&dir));
            let (mut restored, summary, replayed) = client.restore_session("w").unwrap();
            assert_eq!(
                replayed, tail,
                "case seed={seed} kill={kill:?}: wrong WAL tail replayed"
            );
            assert_eq!(summary.rows, twin.problem().instance().len());

            let wire = restored.spectrum().unwrap();
            let local = twin.spectrum().unwrap();
            assert!(
                wire.bit_identical(&local),
                "case seed={seed} kill={kill:?}: recovered spectrum diverged from the twin"
            );
            let stats = restored.stats().unwrap();
            assert_eq!(
                stats.conflict_graph_builds, 0,
                "case seed={seed} kill={kill:?}: recovery rebuilt the conflict graph"
            );

            let counters = client.server_stats().unwrap();
            let counter = |name: &str| {
                counters
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap_or_else(|| panic!("missing counter {name}"))
            };
            assert!(counter("sessions_recovered") >= 1);
            assert_eq!(counter("recovery_failures"), 0);
            assert!(counter("wal_records_replayed") >= tail as u64);

            client.shutdown().unwrap();
            worker.join().unwrap().unwrap();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    assert_eq!(cases, 48);
}

#[test]
fn restore_without_durable_state_is_a_typed_error() {
    // No data dir at all: `no_data_dir`.
    let (client, _handle, _addr, worker) = loopback(ServerConfig::default());
    match client.restore_session("ghost") {
        Err(ClientError::Protocol { code, .. }) => assert_eq!(code, "no_data_dir"),
        Err(other) => panic!("expected a protocol error, got {other}"),
        Ok(_) => panic!("restoring without a data dir must fail"),
    }
    client.shutdown().unwrap();
    worker.join().unwrap().unwrap();

    // A data dir with no files for the name: `unknown_session`.
    let dir = temp_dir("restore-unknown");
    let (client, _handle, _addr, worker) = loopback(durable_config(&dir));
    match client.restore_session("ghost") {
        Err(ClientError::Protocol { code, .. }) => assert_eq!(code, "unknown_session"),
        Err(other) => panic!("expected a protocol error, got {other}"),
        Ok(_) => panic!("restoring an unknown session must fail"),
    }
    client.shutdown().unwrap();
    worker.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_frame_disconnect_is_a_typed_io_error_immediately() {
    let (client, _handle, addr, worker) = loopback(ServerConfig::default());

    // Sever the pong three bytes in: the reply can never finish.
    let mut proxy = ChaosProxy::spawn(addr, ChaosPlan::sever_after(3)).unwrap();
    let chaos_client = Client::connect(&proxy.target()).unwrap();
    match chaos_client.request(&Request::Ping, None).unwrap_err() {
        ClientError::Io(message) => assert!(!message.is_empty()),
        other => panic!("expected ClientError::Io, got {other}"),
    }
    // No retry policy: zero reconnect attempts were made.
    assert_eq!(chaos_client.retry_stats(), (0, 0));

    drop(chaos_client);
    proxy.shutdown();
    client.shutdown().unwrap();
    worker.join().unwrap().unwrap();
}

#[test]
fn retry_budget_is_deterministic_and_exhausts_with_a_typed_error() {
    let (client, _handle, addr, worker) = loopback(ServerConfig::default());

    // Every connection through this proxy severs at byte 3, so each retry
    // reconnects successfully and then fails again.
    let mut proxy = ChaosProxy::spawn(addr, ChaosPlan::sever_after(3)).unwrap();
    let policy = RetryPolicy::new(3, 42);
    let expected_backoff = policy.backoff_units(1) + policy.backoff_units(2);
    let chaos_client = Client::connect_with(&proxy.target(), policy).unwrap();

    match chaos_client.request(&Request::Ping, None).unwrap_err() {
        ClientError::Exhausted { attempts } => assert_eq!(attempts, 3),
        other => panic!("expected ClientError::Exhausted, got {other}"),
    }
    let (reconnects, backoff_units) = chaos_client.retry_stats();
    assert_eq!(reconnects, 2, "one reconnect per non-final failed attempt");
    assert_eq!(backoff_units, expected_backoff, "backoff must be seeded");

    drop(chaos_client);
    proxy.shutdown();
    client.shutdown().unwrap();
    worker.join().unwrap().unwrap();
}

#[test]
fn non_idempotent_requests_are_never_retried() {
    let (client, _handle, addr, worker) = loopback(ServerConfig::default());
    let mut proxy = ChaosProxy::spawn(addr, ChaosPlan::sever_after(3)).unwrap();
    let chaos_client = Client::connect_with(&proxy.target(), RetryPolicy::new(5, 9)).unwrap();

    // `close` mutates server state: the generous retry budget must not
    // apply, and the error is the raw transport failure, not Exhausted.
    let err = chaos_client
        .request(
            &Request::Close {
                session: "ghost".to_string(),
            },
            None,
        )
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Io(_)),
        "expected an immediate ClientError::Io, got {err}"
    );
    assert_eq!(
        chaos_client.retry_stats().0,
        0,
        "no reconnects for mutations"
    );

    drop(chaos_client);
    proxy.shutdown();
    client.shutdown().unwrap();
    worker.join().unwrap().unwrap();
}

/// Forwards one relay direction until either side hangs up.
fn copy_stream(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
                let _ = to.flush();
            }
        }
    }
    let _ = to.shutdown(Shutdown::Both);
}

/// A forwarder that drops its first accepted connection on the floor and
/// relays the second faithfully — the shape of a server restart from the
/// client's point of view.
fn flaky_then_healthy(upstream: SocketAddr) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let mut first = true;
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            if first {
                first = false;
                let _ = stream.shutdown(Shutdown::Both);
                continue;
            }
            let server = TcpStream::connect(upstream).unwrap();
            let client_read = stream.try_clone().unwrap();
            let server_read = server.try_clone().unwrap();
            std::thread::spawn(move || copy_stream(client_read, server));
            std::thread::spawn(move || copy_stream(server_read, stream));
            break;
        }
    });
    (addr, handle)
}

#[test]
fn idempotent_requests_reconnect_and_succeed_after_a_dropped_connection() {
    let (client, _handle, addr, worker) = loopback(ServerConfig::default());
    let (flaky_addr, forwarder) = flaky_then_healthy(addr);

    let resilient = Client::connect_with(&flaky_addr.to_string(), RetryPolicy::new(4, 7)).unwrap();
    // First attempt lands on the dropped connection -> Io; the retry
    // layer reconnects and the ping answers.
    match resilient.request(&Request::Ping, None).unwrap() {
        Response::Pong => {}
        other => panic!("expected pong, got {}", other.kind()),
    }
    assert_eq!(resilient.retry_stats().0, 1, "exactly one reconnect");

    drop(resilient);
    forwarder.join().unwrap();
    client.shutdown().unwrap();
    worker.join().unwrap().unwrap();
}

#[test]
fn seeded_chaos_fuzz_yields_typed_errors_and_a_surviving_server() {
    let mut clean_arms = 0;
    let mut typed_errors = 0;
    for seed in 0..24u64 {
        let plan = ChaosPlan::from_seed(seed);
        let (_client, _handle, addr, worker) = loopback(ServerConfig::default());
        let mut proxy = ChaosProxy::spawn(addr, plan).unwrap();

        let chaos_client = Client::connect(&proxy.target()).unwrap();
        let outcome: Result<(), ClientError> = (|| {
            let mut session = chaos_client.create_session(&format!("fuzz-{seed}"), opts())?;
            session.load_csv(BASE_CSV, false, &BASE_FDS)?;
            let spectrum = session.spectrum()?;
            let _ = session.stats()?;
            // A faithful relay must not lose results either.
            if plan.fault == WireFault::None {
                let twin = local_engine(BASE_CSV, &BASE_FDS);
                assert!(spectrum.bit_identical(&twin.spectrum().unwrap()));
            }
            Ok(())
        })();
        match outcome {
            Ok(()) => clean_arms += 1,
            Err(err) => {
                // Typed means displayable and classified — never a panic,
                // never a hang (reaching here at all proves no hang).
                assert!(!err.to_string().is_empty());
                assert!(
                    plan.fault != WireFault::None,
                    "control arm (seed {seed}) must stay clean, got {err}"
                );
                typed_errors += 1;
            }
        }

        drop(chaos_client);
        proxy.shutdown();

        // The real server behind the proxy survived the abuse.
        let direct = Client::connect(&addr.to_string()).unwrap();
        match direct.request(&Request::Ping, None).unwrap() {
            Response::Pong => {}
            other => panic!("seed {seed}: expected pong, got {}", other.kind()),
        }
        direct.shutdown().unwrap();
        worker.join().unwrap().unwrap();
    }
    // The seed sweep must actually exercise both outcomes.
    assert!(clean_arms > 0, "no chaos seed completed cleanly");
    assert!(typed_errors > 0, "no chaos seed produced a typed error");
}
