//! Edge-case coverage for the typed CSV/TSV ingestion layer, driven
//! through the public facade the way a user would: quoted delimiters,
//! CRLF endings, ragged rows, null-token policy, and type-inference
//! conflicts falling back to `Str`.

use relative_trust::io::{
    infer_schema, load_path, load_path_chunked, read_instance, read_instance_chunked, CsvOptions,
    IoError,
};
use relative_trust::prelude::*;

#[test]
fn quoted_delimiters_quotes_and_newlines_stay_literal() {
    let csv = "name,note\n\
               \"Doe, Jane\",\"says \"\"hi\"\"\"\n\
               plain,\"two\nlines\"\n";
    let report = read_instance(csv.as_bytes(), &CsvOptions::csv()).unwrap();
    let inst = &report.instance;
    assert_eq!(inst.len(), 2);
    assert_eq!(
        *inst.cell(CellRef::new(0, AttrId(0))).unwrap(),
        Value::str("Doe, Jane")
    );
    assert_eq!(
        *inst.cell(CellRef::new(0, AttrId(1))).unwrap(),
        Value::str("says \"hi\"")
    );
    assert_eq!(
        *inst.cell(CellRef::new(1, AttrId(1))).unwrap(),
        Value::str("two\nlines")
    );
}

#[test]
fn crlf_input_parses_like_lf_input() {
    let lf = "a,b\n1,x\n2,y\n";
    let crlf = "a,b\r\n1,x\r\n2,y\r\n";
    let from_lf = read_instance(lf.as_bytes(), &CsvOptions::csv()).unwrap();
    let from_crlf = read_instance(crlf.as_bytes(), &CsvOptions::csv()).unwrap();
    assert_eq!(from_lf.instance, from_crlf.instance);
    assert_eq!(from_lf.columns, from_crlf.columns);
}

#[test]
fn ragged_rows_are_errors_with_line_numbers() {
    let csv = "a,b,c\n1,2,3\n4,5\n";
    let err = read_instance(csv.as_bytes(), &CsvOptions::csv()).unwrap_err();
    match err {
        IoError::Parse { line, message } => {
            assert_eq!(line, 3);
            assert!(message.contains("expected 3 fields, found 2"), "{message}");
        }
        other => panic!("expected a parse error, got {other:?}"),
    }
    // Too many fields is just as ragged as too few.
    let err = read_instance("a,b\n1,2,3\n".as_bytes(), &CsvOptions::csv()).unwrap_err();
    assert!(matches!(err, IoError::Parse { line: 2, .. }), "{err:?}");
}

#[test]
fn null_tokens_apply_per_cell_and_quoting_escapes_them() {
    let csv = "a,b\nNULL,1\nNA,2\n\"NULL\",3\n,4\n";
    let report = read_instance(csv.as_bytes(), &CsvOptions::csv()).unwrap();
    let inst = &report.instance;
    // Unquoted NULL / NA / empty all hit the default null policy...
    assert!(inst.cell(CellRef::new(0, AttrId(0))).unwrap().is_null());
    assert!(inst.cell(CellRef::new(1, AttrId(0))).unwrap().is_null());
    assert!(inst.cell(CellRef::new(3, AttrId(0))).unwrap().is_null());
    // ...but a *quoted* "NULL" is a literal string.
    assert_eq!(
        *inst.cell(CellRef::new(2, AttrId(0))).unwrap(),
        Value::str("NULL")
    );
    assert_eq!(report.null_cells, 3);

    // A custom token list replaces the default policy entirely.
    let custom = CsvOptions::csv().nulls(["-"]);
    let report = read_instance("a\n-\nNULL\n".as_bytes(), &custom).unwrap();
    assert!(report
        .instance
        .cell(CellRef::new(0, AttrId(0)))
        .unwrap()
        .is_null());
    assert_eq!(
        *report.instance.cell(CellRef::new(1, AttrId(0))).unwrap(),
        Value::str("NULL")
    );
}

#[test]
fn type_inference_conflicts_fall_back_to_str() {
    // Column a: ints until a stray word → Str (and "7" loads as the
    // string "7", not the integer 7). Column b: ints then a float → Float.
    // Column c: all ints → Int. Column d: only nulls → Str.
    let csv = "a,b,c,d\n7,1,10,NULL\n8,2.5,11,\nword,3,12,NA\n";
    let schema = infer_schema(csv.as_bytes(), &CsvOptions::csv()).unwrap();
    assert_eq!(
        schema.columns,
        vec![
            ColumnType::Str,
            ColumnType::Float,
            ColumnType::Int,
            ColumnType::Str
        ]
    );
    let report = read_instance(csv.as_bytes(), &CsvOptions::csv()).unwrap();
    let inst = &report.instance;
    assert_eq!(
        *inst.cell(CellRef::new(0, AttrId(0))).unwrap(),
        Value::str("7")
    );
    assert_eq!(
        *inst.cell(CellRef::new(0, AttrId(1))).unwrap(),
        Value::float(1.0)
    );
    assert_eq!(
        *inst.cell(CellRef::new(0, AttrId(2))).unwrap(),
        Value::Int(10)
    );
    // Non-finite spellings never become floats.
    let schema = infer_schema("x\n1.5\ninf\n".as_bytes(), &CsvOptions::csv()).unwrap();
    assert_eq!(schema.columns, vec![ColumnType::Str]);
}

#[test]
fn tsv_dialect_and_instance_from_csv_round_trip() {
    let dir = std::env::temp_dir().join("rt_csv_io_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("data.tsv");
    std::fs::write(&path, "id\tscore\n1\t2.5\n2\t3.5\n").unwrap();
    // The `Instance::from_csv` spelling comes from the extension trait.
    let inst = Instance::from_csv(&path, &CsvOptions::tsv()).unwrap();
    assert_eq!(inst.len(), 2);
    assert_eq!(
        *inst.cell(CellRef::new(1, AttrId(1))).unwrap(),
        Value::float(3.5)
    );
    // load_path (two streaming passes) agrees with the buffered reader.
    let text = std::fs::read_to_string(&path).unwrap();
    let buffered = read_instance(text.as_bytes(), &CsvOptions::tsv()).unwrap();
    let streamed = load_path(&path, &CsvOptions::tsv()).unwrap();
    assert_eq!(buffered.instance, streamed.instance);
    std::fs::remove_file(&path).ok();
}

#[test]
fn chunked_streaming_is_identical_for_every_chunk_size() {
    // The memory-bounded ingestion contract: the chunk size is an
    // accounting knob, never a semantic one. Chunk-of-1, chunk-of-10k
    // (bigger than the fixture, so a single flush) and the unchunked
    // reader must produce the same instance — codes, dictionaries,
    // column types and null count included.
    let csv = relative_trust::scenarios::HOSPITAL_CSV;
    let options = CsvOptions::csv().relation("hospital");
    let whole = read_instance(csv.as_bytes(), &options).unwrap();
    for chunk_rows in [1usize, 7, 10_000] {
        let chunked = read_instance_chunked(csv.as_bytes(), chunk_rows, &options).unwrap();
        assert_eq!(
            whole.instance, chunked.instance,
            "chunk_rows={chunk_rows}: instances differ"
        );
        assert_eq!(whole.columns, chunked.columns, "chunk_rows={chunk_rows}");
        assert_eq!(
            whole.null_cells, chunked.null_cells,
            "chunk_rows={chunk_rows}"
        );
    }

    // Same contract for the file-backed streaming pass.
    let dir = std::env::temp_dir().join("rt_csv_io_chunked_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("hospital.csv");
    std::fs::write(&path, csv).unwrap();
    let streamed = load_path(&path, &options).unwrap();
    for chunk_rows in [1usize, 10_000] {
        let chunked = load_path_chunked(&path, chunk_rows, &options).unwrap();
        assert_eq!(
            streamed.instance, chunked.instance,
            "chunk_rows={chunk_rows}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn ragged_chunk_boundaries_keep_quoted_fields_intact() {
    // Regression guard: a quoted field holding delimiters, escaped quotes
    // and embedded newlines must survive chunk boundaries landing on (and
    // inside the textual span of) its record. chunk_rows=1 puts a flush
    // between every pair of records, chunk_rows=2 puts one mid-list.
    let csv = "name,note\n\
               \"Doe, Jane\",\"says \"\"hi\"\"\"\n\
               plain,\"two\nlines\"\n\
               \"last, one\",\"tail\nend\"\n";
    let whole = read_instance(csv.as_bytes(), &CsvOptions::csv()).unwrap();
    for chunk_rows in [1usize, 2, 3] {
        let chunked =
            read_instance_chunked(csv.as_bytes(), chunk_rows, &CsvOptions::csv()).unwrap();
        assert_eq!(
            whole.instance, chunked.instance,
            "chunk_rows={chunk_rows}: quoted fields corrupted at a chunk boundary"
        );
    }
    let inst = &whole.instance;
    assert_eq!(
        *inst.cell(CellRef::new(2, AttrId(1))).unwrap(),
        Value::str("tail\nend")
    );

    // Errors keep their line numbers even when they land mid-chunk.
    let err =
        read_instance_chunked("a,b,c\n1,2,3\n4,5\n".as_bytes(), 1, &CsvOptions::csv()).unwrap_err();
    assert!(matches!(err, IoError::Parse { line: 3, .. }), "{err:?}");
}

#[test]
fn typed_load_feeds_the_engine_end_to_end() {
    // The whole point of the ingestion layer: a loaded instance drops
    // straight into a repair session.
    let csv = "dept,manager\nsales,kim\nsales,lee\nops,pat\n";
    let report = read_instance(csv.as_bytes(), &CsvOptions::csv()).unwrap();
    let schema = report.instance.schema().clone();
    let fds = FdSet::parse(&["dept->manager"], &schema).unwrap();
    let engine = RepairEngine::builder(report.instance, fds)
        .weight(WeightKind::AttrCount)
        .parallelism(Parallelism::Serial)
        .build()
        .unwrap();
    let repair = engine.repair_at(engine.delta_p_original()).unwrap();
    assert!(repair.modified_fds.holds_on(&repair.repaired_instance));
}
