//! Integration tests of the `RepairEngine` session API: builder
//! validation, equivalence with the deprecated free-function surface,
//! sweep laziness, session reuse and determinism under fixed parallelism.

use relative_trust::prelude::*;

/// The Figure-2 instance of the paper.
fn figure2() -> (Instance, FdSet) {
    let schema = Schema::new("R", vec!["A", "B", "C", "D"]).unwrap();
    let instance = Instance::from_int_rows(
        schema.clone(),
        &[
            vec![1, 1, 1, 1],
            vec![1, 2, 1, 3],
            vec![2, 2, 1, 1],
            vec![2, 3, 4, 3],
        ],
    )
    .unwrap();
    let fds = FdSet::parse(&["A->B", "C->D"], &schema).unwrap();
    (instance, fds)
}

fn figure2_engine() -> RepairEngine {
    let (instance, fds) = figure2();
    RepairEngine::builder(instance, fds)
        .weight(WeightKind::AttrCount)
        .build()
        .unwrap()
}

// ---------------------------------------------------------------------------
// Builder validation
// ---------------------------------------------------------------------------

#[test]
fn builder_rejects_zero_max_expansions() {
    let (instance, fds) = figure2();
    let err = RepairEngine::builder(instance, fds)
        .max_expansions(0)
        .build()
        .unwrap_err();
    assert!(matches!(err, EngineError::InvalidConfig(_)), "got {err:?}");
    assert!(err.to_string().contains("max_expansions"));
}

#[test]
fn builder_rejects_empty_fd_set() {
    let (instance, _) = figure2();
    let err = RepairEngine::builder(instance, FdSet::new())
        .build()
        .unwrap_err();
    assert!(matches!(err, EngineError::InvalidConfig(_)), "got {err:?}");
    assert!(err.to_string().contains("empty"));
}

#[test]
fn builder_rejects_fds_outside_the_schema() {
    let (instance, _) = figure2();
    // An FD referring to attribute 9 of a 4-attribute schema.
    let fds = FdSet::from_fds(vec![Fd::from_indices(&[9], 1)]);
    let err = RepairEngine::builder(instance, fds).build().unwrap_err();
    assert!(matches!(err, EngineError::Fd(_)), "got {err:?}");
    assert!(err.to_string().contains("attribute"));
}

#[test]
fn builder_rejects_degenerate_heuristic_configs() {
    let (instance, fds) = figure2();
    let err = RepairEngine::builder(instance.clone(), fds.clone())
        .heuristic(rt_engine::HeuristicConfig {
            max_diff_sets: 0,
            node_budget: 100,
        })
        .build()
        .unwrap_err();
    assert!(matches!(err, EngineError::InvalidConfig(_)), "got {err:?}");
    let err = RepairEngine::builder(instance, fds)
        .heuristic(rt_engine::HeuristicConfig {
            max_diff_sets: 5,
            node_budget: 0,
        })
        .build()
        .unwrap_err();
    assert!(matches!(err, EngineError::InvalidConfig(_)), "got {err:?}");
}

// ---------------------------------------------------------------------------
// Equivalence with the rt-core primitives
// ---------------------------------------------------------------------------

#[test]
fn repair_at_relative_matches_core_primitive_bit_for_bit() {
    use relative_trust::core::repair::repair_data_fds_with;
    use relative_trust::core::SearchAlgorithm;

    let (instance, fds) = figure2();
    // The primitive with the DistinctCount default weighting, seed 0 and
    // the default search config — the engine's defaults.
    let problem = RepairProblem::new(&instance, &fds);
    let engine = RepairEngine::builder(instance.clone(), fds.clone())
        .build()
        .unwrap();
    for tau_r in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let old = repair_data_fds_with(
            &problem,
            problem.absolute_tau(tau_r),
            &SearchConfig::default(),
            SearchAlgorithm::AStar,
            0,
        )
        .unwrap();
        let new = engine.repair_at_relative(tau_r).unwrap();
        assert_eq!(old.tau, new.tau, "τ_r={tau_r}");
        assert_eq!(old.state, new.state, "τ_r={tau_r}");
        assert_eq!(old.modified_fds, new.modified_fds, "τ_r={tau_r}");
        assert_eq!(old.dist_c, new.dist_c, "τ_r={tau_r}");
        assert_eq!(old.delta_p, new.delta_p, "τ_r={tau_r}");
        assert_eq!(old.repaired_instance, new.repaired_instance, "τ_r={tau_r}");
        assert_eq!(old.changed_cells, new.changed_cells, "τ_r={tau_r}");
    }
}

/// The headline acceptance check: a full `sweep` produces repairs
/// bit-identical to a direct `RangeSearch` + `materialize`, and the
/// engine's telemetry shows conflict-graph construction ran exactly once
/// across the whole sweep.
#[test]
fn sweep_matches_range_search_with_one_graph_build() {
    use relative_trust::core::RangeSearch;

    let (instance, fds) = figure2();
    let problem = RepairProblem::with_weight(&instance, &fds, WeightKind::AttrCount);
    let engine = figure2_engine();
    let hi = engine.delta_p_original();

    let old_outcome = RangeSearch::new(&problem, 0, hi, &SearchConfig::default()).run_to_end();
    let old_materialized = old_outcome.materialize(&problem, 0);

    let new_points: Vec<RepairPoint> = engine.sweep(0..=hi).collect::<Result<Vec<_>, _>>().unwrap();

    assert_eq!(old_outcome.repairs.len(), new_points.len());
    for i in 0..new_points.len() {
        let (old_ranged, old_repair, point) = (
            &old_outcome.repairs[i],
            &old_materialized[i],
            &new_points[i],
        );
        assert_eq!(old_ranged.tau_range, point.tau_range);
        assert_eq!(old_repair.state, point.repair.state);
        assert_eq!(old_repair.modified_fds, point.repair.modified_fds);
        assert_eq!(old_repair.dist_c, point.repair.dist_c);
        assert_eq!(old_repair.delta_p, point.repair.delta_p);
        assert_eq!(old_repair.repaired_instance, point.repair.repaired_instance);
        assert_eq!(old_repair.changed_cells, point.repair.changed_cells);
    }

    let stats = engine.stats();
    assert_eq!(
        stats.conflict_graph_builds, 1,
        "the conflict graph must be built exactly once for the whole sweep"
    );
    // The search did real work and every point was materialized lazily.
    assert_eq!(stats.points_materialized, new_points.len());
    assert!(stats.states_expanded > 0);
}

// ---------------------------------------------------------------------------
// Sweep laziness
// ---------------------------------------------------------------------------

#[test]
fn sweep_is_lazy_and_materializes_on_demand() {
    let engine = figure2_engine();
    let hi = engine.delta_p_original();

    // Creating the stream does no search or materialization work.
    let mut stream = engine.sweep(0..=hi);
    let stats = engine.stats();
    assert_eq!(stats.states_expanded, 0, "sweep() must not search eagerly");
    assert_eq!(
        stats.points_materialized, 0,
        "sweep() must not materialize eagerly"
    );
    assert_eq!(stats.sweeps_started, 1);

    // Pulling the first point does exactly one repair's worth of work.
    let first = stream.next().unwrap().unwrap();
    assert!(first.repair.is_pure_data_repair());
    let stats = engine.stats();
    assert_eq!(stats.points_materialized, 1);
    let expanded_after_first = stats.states_expanded;
    assert!(expanded_after_first > 0);

    // Draining the rest costs more search work — which would already have
    // been spent had the sweep been eager.
    let rest: Vec<_> = stream.collect();
    assert_eq!(rest.len(), 2, "Figure 2 has 3 spectrum points");
    let stats = engine.stats();
    assert_eq!(stats.points_materialized, 3);
    assert!(stats.states_expanded > expanded_after_first);
}

#[test]
fn abandoned_sweep_costs_only_what_was_pulled() {
    let eager = figure2_engine();
    let full_cost = {
        let spectrum = eager.spectrum().unwrap();
        assert_eq!(spectrum.len(), 3);
        eager.stats().states_expanded
    };

    let lazy = figure2_engine();
    let mut stream = lazy.sweep(0..=lazy.delta_p_original());
    let _first = stream.next().unwrap().unwrap();
    drop(stream);
    assert!(
        lazy.stats().states_expanded < full_cost,
        "taking one point must expand fewer states ({}) than the full sweep ({full_cost})",
        lazy.stats().states_expanded
    );
}

// ---------------------------------------------------------------------------
// Session reuse and determinism
// ---------------------------------------------------------------------------

#[test]
fn engine_reuse_across_tau_is_deterministic_under_fixed_parallelism() {
    let (instance, fds) = figure2();
    let build = |par: Parallelism| {
        RepairEngine::builder(instance.clone(), fds.clone())
            .weight(WeightKind::AttrCount)
            .parallelism(par)
            .build()
            .unwrap()
    };
    let reference = build(Parallelism::Serial);
    let engine = build(Parallelism::Fixed(4));
    let hi = engine.delta_p_original();

    // Interleave queries in both directions and repeat them: one session
    // must answer every τ identically to a fresh serial run, every time.
    let taus: Vec<usize> = (0..=hi).chain((0..=hi).rev()).chain(0..=hi).collect();
    for &tau in &taus {
        let serial = reference.repair_at(tau).unwrap();
        let parallel = engine.repair_at(tau).unwrap();
        assert_eq!(serial.state, parallel.state, "τ={tau}");
        assert_eq!(serial.modified_fds, parallel.modified_fds, "τ={tau}");
        assert_eq!(
            serial.repaired_instance, parallel.repaired_instance,
            "τ={tau}"
        );
        assert_eq!(serial.changed_cells, parallel.changed_cells, "τ={tau}");
    }
    // The engine served every query from the one prepared problem.
    assert_eq!(engine.stats().conflict_graph_builds, 1);
    assert_eq!(engine.stats().repair_queries, taus.len());

    // Sweeps are deterministic across parallelism settings too.
    let serial_spectrum = reference.spectrum().unwrap();
    let parallel_spectrum = engine.spectrum().unwrap();
    assert_eq!(serial_spectrum.len(), parallel_spectrum.len());
    for (a, b) in serial_spectrum
        .points
        .iter()
        .zip(parallel_spectrum.points.iter())
    {
        assert_eq!(a.tau_range, b.tau_range);
        assert_eq!(a.repair.repaired_instance, b.repair.repaired_instance);
        assert_eq!(a.repair.changed_cells, b.repair.changed_cells);
    }
}

#[test]
fn fd_repair_at_skips_materialization() {
    let engine = figure2_engine();
    let fd_repair = engine.fd_repair_at(2).unwrap();
    assert_eq!(fd_repair.delta_p, 2);
    assert_eq!(fd_repair.dist_c, 1.0);
    assert_eq!(engine.stats().points_materialized, 0);
}

#[test]
fn budget_exhaustion_is_a_typed_error() {
    let (instance, fds) = figure2();
    let engine = RepairEngine::builder(instance, fds)
        .weight(WeightKind::AttrCount)
        .max_expansions(1)
        .build()
        .unwrap();
    // τ = 0 needs a deep search; one expansion covers only the root.
    let err = engine.repair_at(0).unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::BudgetExhausted {
                tau: 0,
                max_expansions: 1
            }
        ),
        "got {err:?}"
    );
    assert!(engine.stats().truncated);

    // The streaming sweep surfaces the same condition as a final Err item.
    let results: Vec<_> = engine.sweep(0..=0).collect();
    assert!(matches!(
        results.last(),
        Some(Err(EngineError::BudgetExhausted { .. }))
    ));
}

#[test]
fn unified_baseline_matches_free_function() {
    let (instance, fds) = figure2();
    let engine = RepairEngine::builder(instance.clone(), fds.clone())
        .build()
        .unwrap();
    let weight = relative_trust::constraints::DistinctCountWeight::new(&instance);
    let config = UnifiedCostConfig::default();
    let old = unified_cost_repair(&instance, &fds, &weight, &config);
    let new = engine.unified_baseline(&config);
    assert_eq!(old.modified_fds, new.modified_fds);
    assert_eq!(old.repaired_instance, new.repaired_instance);
    assert_eq!(old.changed_cells, new.changed_cells);
    assert_eq!(old.total_cost(), new.total_cost());
}

#[test]
fn empty_sweep_range_yields_nothing_on_clean_data() {
    let schema = Schema::new("R", vec!["A", "B"]).unwrap();
    let instance = Instance::from_int_rows(schema.clone(), &[vec![1, 1], vec![2, 3]]).unwrap();
    let fds = FdSet::parse(&["A->B"], &schema).unwrap();
    let engine = RepairEngine::new(instance, fds).unwrap();
    assert_eq!(engine.delta_p_original(), 0);
    let spectrum = engine.spectrum().unwrap();
    // Clean data: the root is the unique repair, with no cell changes.
    assert_eq!(spectrum.len(), 1);
    assert!(spectrum.points[0].repair.is_pure_fd_repair());
    assert!(spectrum.points[0].repair.is_pure_data_repair());
}
