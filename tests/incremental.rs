//! The incremental ≡ rebuild contract of the mutable engine.
//!
//! Hard invariant (mirroring PR 1's parallel ≡ serial contract): after any
//! seeded mutation sequence, the incremental engine's repairs, spectrum and
//! stats-relevant outputs are **bit-identical** to a freshly built engine
//! on the mutated `(I, Σ)` — while the incremental engine's
//! `conflict_graph_builds` stays at `1`.
//!
//! The main test is a 48-case seeded property loop: random instances,
//! random FD sets, random mutation streams (inserts, deletes, cell
//! updates, FD edits), applied both per-op and as one atomic batch,
//! rotated across all three weighting functions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relative_trust::datagen::{generate_mutation_stream, MutationStreamConfig};
use relative_trust::prelude::*;
use relative_trust::relation::AttrId;

/// A random instance with small column domains, so FDs actually conflict.
fn random_instance(rng: &mut StdRng) -> Instance {
    let arity = rng.gen_range(4..6usize);
    let rows = rng.gen_range(8..19usize);
    let names: Vec<String> = (0..arity).map(|a| format!("A{a}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let schema = Schema::new("R", name_refs).unwrap();
    let data: Vec<Vec<i64>> = (0..rows)
        .map(|_| {
            (0..arity)
                .map(|_| rng.gen_range(0..3i64))
                .collect::<Vec<i64>>()
        })
        .collect();
    Instance::from_int_rows(schema, &data).unwrap()
}

/// A random FD set: two FDs with distinct RHSs and 1–2 LHS attributes.
fn random_fds(rng: &mut StdRng, arity: usize) -> FdSet {
    let mut fds = FdSet::new();
    for _ in 0..2 {
        let rhs = rng.gen_range(0..arity);
        let lhs_size = rng.gen_range(1..3usize);
        let mut lhs = AttrSet::new();
        while lhs.len() < lhs_size {
            let a = rng.gen_range(0..arity);
            if a != rhs {
                lhs.insert(AttrId(a as u16));
            }
        }
        fds.push(Fd::new(lhs, AttrId(rhs as u16)));
    }
    fds
}

fn build(instance: Instance, fds: FdSet, weight: WeightKind, seed: u64) -> RepairEngine {
    RepairEngine::builder(instance, fds)
        .weight(weight)
        .parallelism(Parallelism::Serial)
        .max_expansions(100_000)
        .seed(seed)
        .build()
        .unwrap()
}

/// Asserts full bit-identity between two spectra, field by field so a
/// failure names the diverging point — then cross-checks against the
/// engine's own [`Spectrum::bit_identical`] predicate so the two can never
/// drift apart in what they compare.
fn assert_spectra_identical(a: &Spectrum, b: &Spectrum, context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: spectrum sizes differ");
    for (i, (x, y)) in a.points.iter().zip(b.points.iter()).enumerate() {
        assert_eq!(x.tau_range, y.tau_range, "{context}: point {i} interval");
        assert_eq!(
            x.repair.delta_p, y.repair.delta_p,
            "{context}: point {i} δP"
        );
        assert_eq!(
            x.repair.dist_c.to_bits(),
            y.repair.dist_c.to_bits(),
            "{context}: point {i} dist_c"
        );
        assert_eq!(x.repair.state, y.repair.state, "{context}: point {i} state");
        assert_eq!(
            x.repair.modified_fds, y.repair.modified_fds,
            "{context}: point {i} Σ'"
        );
        assert_eq!(
            x.repair.repaired_instance, y.repair.repaired_instance,
            "{context}: point {i} I'"
        );
        assert_eq!(
            x.repair.changed_cells, y.repair.changed_cells,
            "{context}: point {i} Δd"
        );
    }
    assert!(a.bit_identical(b), "{context}: bit_identical disagrees");
}

/// The 48-case seeded property loop.
#[test]
fn incremental_matches_rebuild_on_random_mutation_sequences() {
    let weights = [
        WeightKind::AttrCount,
        WeightKind::DistinctCount,
        WeightKind::Entropy,
    ];
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xD3117A + case);
        let instance = random_instance(&mut rng);
        let arity = instance.schema().arity();
        let fds = random_fds(&mut rng, arity);
        let weight = weights[(case % 3) as usize];
        let context = format!("case {case} ({weight:?})");

        let mut engine = build(instance.clone(), fds.clone(), weight, case);
        let ops = generate_mutation_stream(
            &instance,
            &fds,
            &MutationStreamConfig {
                ops: rng.gen_range(5..11usize),
                seed: 0xFEED + case,
                ..Default::default()
            },
        );

        // Alternate replay styles: one batch per op vs one atomic batch.
        let mut batches = 0usize;
        if case % 2 == 0 {
            for op in &ops {
                engine
                    .apply(&MutationBatch::new().push(op.clone()))
                    .unwrap_or_else(|e| panic!("{context}: {e}"));
                batches += 1;
            }
        } else {
            let batch: MutationBatch = ops.iter().cloned().collect();
            engine
                .apply(&batch)
                .unwrap_or_else(|e| panic!("{context}: {e}"));
            batches += 1;
        }

        // The reference: a fresh engine on the mutated inputs, same knobs.
        let fresh = build(
            engine.problem().instance().clone(),
            engine.problem().sigma().clone(),
            weight,
            case,
        );

        // Prepared state matches a fresh build exactly.
        assert_eq!(
            engine.problem().conflict_graph(),
            fresh.problem().conflict_graph(),
            "{context}: conflict graphs differ"
        );
        assert_eq!(
            engine.delta_p_original(),
            fresh.delta_p_original(),
            "{context}: δP reference differs"
        );

        // Every output matches bit-for-bit.
        let inc_spectrum = engine
            .spectrum()
            .unwrap_or_else(|e| panic!("{context}: {e}"));
        let fresh_spectrum = fresh
            .spectrum()
            .unwrap_or_else(|e| panic!("{context}: {e}"));
        assert_spectra_identical(&inc_spectrum, &fresh_spectrum, &context);

        // Point queries agree too — including on budgets below the
        // irreducible conflict floor, where both must report the same
        // failure.
        for tau in [engine.delta_p_original() / 2, engine.delta_p_original()] {
            match (engine.repair_at(tau), fresh.repair_at(tau)) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        a.repaired_instance, b.repaired_instance,
                        "{context}: τ={tau}"
                    );
                    assert_eq!(a.changed_cells, b.changed_cells, "{context}: τ={tau}");
                    assert_eq!(a.modified_fds, b.modified_fds, "{context}: τ={tau}");
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{context}: τ={tau}"),
                (a, b) => panic!(
                    "{context}: τ={tau}: engines disagree on feasibility \
                     (incremental {a:?} vs fresh {b:?})"
                ),
            }
        }

        // The acceptance invariant: incremental path never rebuilt the
        // graph, and every batch avoided a rebuild.
        let stats = engine.stats();
        assert_eq!(stats.conflict_graph_builds, 1, "{context}");
        assert_eq!(stats.graph_rebuild_avoided, batches, "{context}");
        assert_eq!(stats.mutation_batches, batches, "{context}");
    }
}

/// Batches are all-or-nothing: a batch whose *last* op is invalid leaves
/// the engine exactly as it was.
#[test]
fn failed_batches_leave_the_engine_untouched() {
    let schema = Schema::new("R", vec!["A", "B"]).unwrap();
    let instance =
        Instance::from_int_rows(schema.clone(), &[vec![1, 1], vec![1, 2], vec![2, 5]]).unwrap();
    let fds = FdSet::parse(&["A->B"], &schema).unwrap();
    let mut engine = build(instance, fds, WeightKind::AttrCount, 0);
    let before = engine.spectrum().unwrap();
    let edge_count_before = engine.problem().conflict_graph().edge_count();

    // Valid inserts followed by an out-of-range delete: nothing applies.
    let batch = MutationBatch::new()
        .insert_row(vec![Value::int(9), Value::int(9)])
        .delete_tuples(vec![99]);
    let err = engine.apply(&batch).unwrap_err();
    assert!(matches!(err, EngineError::Mutation(_)), "got {err:?}");

    assert_eq!(engine.problem().instance().len(), 3, "insert leaked");
    assert_eq!(
        engine.problem().conflict_graph().edge_count(),
        edge_count_before
    );
    let after = engine.spectrum().unwrap();
    assert_spectra_identical(&before, &after, "all-or-nothing");
    assert_eq!(engine.stats().mutation_batches, 0);
}

/// Invalidation-scoped cache reset: a conflict-free insert under the
/// data-independent AttrCount weighting provably changes no FD-level search
/// answer, so a completed sweep replays from its checkpoint with zero new
/// search work — while still reflecting the mutated instance in the
/// materialized repairs.
#[test]
fn sweep_checkpoint_survives_neutral_mutations() {
    let schema = Schema::new("R", vec!["A", "B", "C"]).unwrap();
    let instance = Instance::from_int_rows(
        schema.clone(),
        &[vec![1, 1, 1], vec![1, 2, 1], vec![2, 5, 3], vec![2, 5, 4]],
    )
    .unwrap();
    let fds = FdSet::parse(&["A->B", "C->B"], &schema).unwrap();
    let mut engine = build(instance, fds, WeightKind::AttrCount, 1);

    let first = engine.spectrum().unwrap();
    let expanded_after_first = engine.stats().states_expanded;
    assert!(expanded_after_first > 0);

    // A=7, C=7 occur nowhere: the insert shares no LHS class with any row.
    let outcome = engine
        .insert_tuples(vec![relative_trust::relation::Tuple::new(vec![
            Value::int(7),
            Value::int(7),
            Value::int(7),
        ])])
        .unwrap();
    assert_eq!(outcome.effect.edges_added, 0);
    assert!(!outcome.effect.search_state_invalidated);
    assert!(outcome.sweep_cache_retained);

    // The second spectrum replays the suspended sweep: same repairs, zero
    // additional search work, one cache hit.
    let second = engine.spectrum().unwrap();
    let stats = engine.stats();
    assert_eq!(stats.states_expanded, expanded_after_first);
    assert_eq!(stats.sweep_cache_hits, 1);
    assert_eq!(first.len(), second.len());
    // The replayed spectrum is still correct w.r.t. the *mutated* instance
    // (one more row than before, materialized live).
    for point in &second.points {
        assert_eq!(point.repair.repaired_instance.len(), 5);
        assert!(point
            .repair
            .modified_fds
            .holds_on(&point.repair.repaired_instance));
    }
    // And it matches a fresh engine on the mutated inputs bit-for-bit.
    let fresh = build(
        engine.problem().instance().clone(),
        engine.problem().sigma().clone(),
        WeightKind::AttrCount,
        1,
    );
    assert_spectra_identical(&second, &fresh.spectrum().unwrap(), "cache survival");
}

/// The heuristic memo table rides the sweep checkpoint across conflict-free
/// mutations: a *partially* drained sweep, suspended by dropping its
/// stream, resumes after a neutral insert — the replayed prefix does zero
/// additional heuristic work, the live continuation hits the warm cache,
/// and the finished spectrum still matches a cold rebuild bit for bit.
#[test]
fn resumed_sweep_after_neutral_insert_reuses_the_heuristic_cache() {
    // A seeded random instance whose spectrum has several points past the
    // first, so the continuation does real heuristic work after the resume
    // (the tiny handcrafted fixtures finish before ever re-querying gc).
    let mut rng = StdRng::seed_from_u64(0xCAFE + 1);
    let instance = random_instance(&mut rng);
    let arity = instance.schema().arity();
    let fds = random_fds(&mut rng, arity);
    let mut engine = build(instance, fds, WeightKind::AttrCount, 1);
    let range = 0..=engine.delta_p_original();

    // Take only the first point, then drop the stream: the traversal (open
    // list *and* heuristic memo table) suspends into the engine.
    let first = {
        let mut stream = engine.sweep(range.clone());
        stream.next().expect("range is non-empty").unwrap()
    };
    let nodes_after_prefix = engine.stats().heuristic_nodes;
    let hits_after_prefix = engine.stats().heuristic_cache_hits;
    assert!(nodes_after_prefix > 0, "prefix did no heuristic work");

    // Value 7 occurs nowhere, so the row shares no LHS class with any
    // existing tuple: conflict-free, and the checkpoint survives.
    let row: Vec<Value> = (0..arity).map(|_| Value::int(7)).collect();
    let outcome = engine
        .insert_tuples(vec![relative_trust::relation::Tuple::new(row)])
        .unwrap();
    assert_eq!(outcome.effect.edges_added, 0);
    assert!(!outcome.effect.search_state_invalidated);
    assert!(outcome.sweep_cache_retained);

    // Re-taking the prefix replays the recorded repair: no search, no
    // heuristic recursion, not even a cache probe.
    let replayed = {
        let mut stream = engine.sweep(range.clone());
        stream.next().expect("replay is non-empty").unwrap()
    };
    assert_eq!(replayed.tau_range, first.tau_range);
    assert_eq!(replayed.repair.state, first.repair.state);
    assert_eq!(
        engine.stats().heuristic_nodes,
        nodes_after_prefix,
        "replaying the prefix re-ran the heuristic"
    );

    // Finishing the sweep resumes the live traversal; the suspended memo
    // table serves its repeat evaluations.
    let finished = engine.spectrum().unwrap();
    assert!(
        finished.len() > 1,
        "fixture too small to exercise the resume"
    );
    assert!(
        engine.stats().heuristic_cache_hits > hits_after_prefix,
        "the resumed traversal never hit the warm heuristic cache"
    );
    let fresh = build(
        engine.problem().instance().clone(),
        engine.problem().sigma().clone(),
        WeightKind::AttrCount,
        1,
    );
    assert_spectra_identical(&finished, &fresh.spectrum().unwrap(), "warm resume");
}

/// The complement: a mutation that *does* change FD-level search state
/// (here: a new conflict edge) resets the checkpoint, and the next sweep
/// does fresh work instead of replaying a stale prefix.
#[test]
fn sweep_checkpoint_resets_when_conflicts_change() {
    let schema = Schema::new("R", vec!["A", "B"]).unwrap();
    let instance =
        Instance::from_int_rows(schema.clone(), &[vec![1, 1], vec![1, 2], vec![2, 5]]).unwrap();
    let fds = FdSet::parse(&["A->B"], &schema).unwrap();
    let mut engine = build(instance, fds, WeightKind::AttrCount, 2);

    engine.spectrum().unwrap();
    let expanded_after_first = engine.stats().states_expanded;

    // Row (2, 6) conflicts with the existing (2, 5) row on A->B.
    let outcome = engine
        .insert_tuples(vec![relative_trust::relation::Tuple::new(vec![
            Value::int(2),
            Value::int(6),
        ])])
        .unwrap();
    assert!(outcome.effect.edges_added > 0);
    assert!(outcome.effect.search_state_invalidated);
    assert!(!outcome.sweep_cache_retained);

    let second = engine.spectrum().unwrap();
    let stats = engine.stats();
    assert!(
        stats.states_expanded > expanded_after_first,
        "no fresh work"
    );
    assert_eq!(stats.sweep_cache_hits, 0);
    let fresh = build(
        engine.problem().instance().clone(),
        engine.problem().sigma().clone(),
        WeightKind::AttrCount,
        2,
    );
    assert_spectra_identical(&second, &fresh.spectrum().unwrap(), "cache reset");
}

/// FD edits route through the same incremental machinery: adding then
/// removing FDs keeps the engine equivalent to a rebuild at every step.
#[test]
fn fd_edit_sequence_stays_equivalent_at_every_step() {
    let schema = Schema::new("R", vec!["A", "B", "C", "D"]).unwrap();
    let instance = Instance::from_int_rows(
        schema.clone(),
        &[
            vec![1, 1, 1, 1],
            vec![1, 2, 1, 3],
            vec![2, 2, 1, 1],
            vec![2, 3, 4, 3],
        ],
    )
    .unwrap();
    let fds = FdSet::parse(&["A->B", "C->D"], &schema).unwrap();
    let mut engine = build(instance, fds, WeightKind::AttrCount, 3);

    let steps: Vec<MutationOp> = vec![
        MutationOp::AddFd(Fd::parse("B->D", &schema).unwrap()),
        MutationOp::RemoveFd(0),
        MutationOp::AddFd(Fd::parse("D->B", &schema).unwrap()),
        MutationOp::RemoveFd(1),
    ];
    for (i, op) in steps.into_iter().enumerate() {
        engine.apply(&MutationBatch::new().push(op)).unwrap();
        let fresh = build(
            engine.problem().instance().clone(),
            engine.problem().sigma().clone(),
            WeightKind::AttrCount,
            3,
        );
        assert_eq!(
            engine.problem().conflict_graph(),
            fresh.problem().conflict_graph(),
            "step {i}"
        );
        assert_spectra_identical(
            &engine.spectrum().unwrap(),
            &fresh.spectrum().unwrap(),
            &format!("fd step {i}"),
        );
    }
    assert_eq!(engine.stats().conflict_graph_builds, 1);
}
