//! # relative-trust
//!
//! Joint repair of inconsistent data and inaccurate functional dependencies
//! under *relative trust* — a Rust implementation of Beskales, Ilyas, Golab
//! and Galiullin, *"On the Relative Trust between Inconsistent Data and
//! Inaccurate Constraints"* (ICDE 2013).
//!
//! The primary public surface is the session type
//! [`RepairEngine`](prelude::RepairEngine) from the [`engine`] crate: build
//! it once from an instance and an FD set, then query it repeatedly across
//! the relative-trust spectrum. The workspace crates underneath are
//! re-exported for direct access:
//!
//! * [`engine`] — **start here**: the [`prelude::RepairEngine`] session,
//!   its fluent builder, the lazy [`prelude::RepairStream`] sweep and the
//!   unified [`prelude::EngineError`];
//! * [`relation`] — schemas, tuples, instances and V-instances;
//! * [`io`] — typed, streaming CSV/TSV ingestion that parses directly into
//!   dictionary codes (`rt_io::load_path`, `Instance::from_csv` via
//!   [`prelude::InstanceCsvExt`]);
//! * [`scenarios`] — the catalog of named, seeded end-to-end workloads
//!   behind `rtclean scenario <name>`;
//! * [`par`] — the parallel execution layer: the [`prelude::Parallelism`]
//!   config and deterministic fork/join maps every other crate fans out
//!   with (results are bit-identical for every thread count);
//! * [`constraints`] — functional dependencies, violation detection,
//!   conflict graphs, difference sets, weights and FD discovery;
//! * [`graph`] — undirected graphs, connected components and approximate
//!   vertex cover;
//! * [`core`] — the repair algorithms themselves (τ-constrained repairs, A*
//!   FD modification, near-optimal data repair, Range-Repair);
//! * [`baseline`] — the unified-cost comparator;
//! * [`datagen`] — census-like workload generation, error injection,
//!   repair-quality metrics and seeded mutation streams;
//! * [`proto`] — the service wire protocol: typed
//!   [`Request`](prelude::Request) / [`Response`](prelude::Response) frames,
//!   line-delimited JSON framing, and the one
//!   [`EngineOpts`](prelude::EngineOpts) option surface shared by the CLI,
//!   the REPL and the server;
//! * [`server`] — `rtclean serve`: hosts named engine sessions over
//!   TCP/Unix sockets with LRU eviction and bounded memory;
//! * [`client`] — the driver: [`Client`](prelude::Client)`::connect` →
//!   [`Session`](prelude::Session) → typed methods, bit-identical results
//!   across the wire.
//!
//! ## Quick start
//!
//! ```
//! use relative_trust::prelude::*;
//!
//! // The employee relation of the paper's Figure 2.
//! let schema = Schema::new("R", vec!["A", "B", "C", "D"]).unwrap();
//! let instance = Instance::from_int_rows(
//!     schema.clone(),
//!     &[vec![1, 1, 1, 1], vec![1, 2, 1, 3], vec![2, 2, 1, 1], vec![2, 3, 4, 3]],
//! )
//! .unwrap();
//! let fds = FdSet::parse(&["A->B", "C->D"], &schema).unwrap();
//!
//! // Build the engine once, then ask for repairs at any trust level.
//! let engine = RepairEngine::builder(instance, fds).build().unwrap();
//! for point in engine.sweep(0..=engine.delta_p_original()) {
//!     let point = point.unwrap();
//!     assert!(point.repair.modified_fds.holds_on(&point.repair.repaired_instance));
//! }
//! // The conflict graph was built exactly once, at `build()` time.
//! assert_eq!(engine.stats().conflict_graph_builds, 1);
//! ```
//!
//! ## Migrating from the free functions
//!
//! Versions up to 0.1 exposed the algorithms as free functions taking a
//! `&RepairProblem`. That surface is **removed** (and `rt-lint` D005 fails
//! the build if one is reintroduced); each former function maps to one
//! engine query:
//!
//! | removed free function               | engine replacement                          |
//! |-------------------------------------|---------------------------------------------|
//! | `RepairProblem::new(&i, &fds)`      | `RepairEngine::builder(i, fds).build()?`    |
//! | `repair_data_fds(&p, tau)`          | `engine.repair_at(tau)?`                    |
//! | `repair_data_fds_relative(&p, t)`   | `engine.repair_at_relative(t)?`             |
//! | `modify_fds_astar(&p, tau, &cfg)`   | `engine.fd_repair_at(tau)?`                 |
//! | `modify_fds_best_first(&p, tau, …)` | `engine.fd_repair_at(tau)?`                 |
//! | `find_repairs_range(&p, lo, hi, …)` | `engine.sweep(lo..=hi)` (lazy) or           |
//! |                                     | `engine.spectrum()?` (collected)            |
//! | `find_repairs_sampling(&p, …)`      | `engine.sampling_spectrum(lo..=hi, step)`   |
//! | `unified_cost_repair(&i, &fds, …)`  | `engine.unified_baseline(&cfg)`             |
//!
//! Configuration that used to be scattered across `SearchConfig`,
//! `WeightKind` and per-call seeds moves onto the builder:
//! `RepairEngine::builder(i, fds).weight(..).algorithm(..).max_expansions(..)
//! .parallelism(..).seed(..).build()?`. Failures that used to be `Option`s
//! or panics surface as the typed [`prelude::EngineError`].
//!
//! Out of process, the same queries travel over the wire: `rtclean serve`
//! hosts sessions, and every [`Session`](prelude::Session) method maps
//! one-to-one onto an engine query (`session.repair_at(tau)` ↔
//! `engine.repair_at(tau)`), with spectra bit-identical across the two.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rt_baseline as baseline;
pub use rt_client as client;
pub use rt_constraints as constraints;
pub use rt_core as core;
pub use rt_datagen as datagen;
pub use rt_engine as engine;
pub use rt_graph as graph;
pub use rt_io as io;
pub use rt_par as par;
pub use rt_proto as proto;
pub use rt_relation as relation;
pub use rt_scenarios as scenarios;
pub use rt_server as server;

/// The most commonly used items, re-exported flat. Engine first: new code
/// should only need [`RepairEngine`](prelude::RepairEngine) plus the data
/// types.
pub mod prelude {
    pub use rt_engine::{
        EngineError, EngineStats, MutationBatch, MutationEffect, MutationOp, MutationOutcome,
        RepairEngine, RepairEngineBuilder, RepairPoint, RepairStream, ShardRows, Spectrum,
    };

    pub use rt_baseline::{unified_cost_repair, UnifiedCostConfig, UnifiedRepair};
    pub use rt_constraints::{
        discover_fds, AttrSet, ConflictGraph, DiscoveryConfig, Fd, FdSet, Weight,
    };
    pub use rt_core::{
        goal_cost_estimate, repair_data, sampling_search, HeuristicCache, HeuristicConfig,
        Parallelism, RangeSearch, Repair, RepairProblem, RepairState, SearchAlgorithm,
        SearchConfig, SearchStats, ShardPlan, WeightKind,
    };
    pub use rt_datagen::{
        evaluate_repair, generate_census_like, perturb, CensusLikeConfig, PerturbConfig,
        RepairQuality,
    };
    pub use rt_graph::{approx_vertex_cover, UndirectedGraph};
    pub use rt_io::{CsvOptions, InstanceCsvExt, IoError, LoadReport};
    pub use rt_relation::{
        AttrId, CellRef, ColumnType, Instance, RelationError, Schema, Tuple, Value,
    };
    pub use rt_scenarios::{Scenario, ScenarioConfig};

    pub use rt_client::{Client, ClientError, RetryPolicy, Session};
    pub use rt_proto::{EngineOpts, ErrorFrame, FrameError, Request, Response, TauSpec};
    pub use rt_server::{FaultPoint, Server, ServerConfig, ServerHandle};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_full_pipeline() {
        let schema = Schema::new("R", vec!["A", "B"]).unwrap();
        let instance = Instance::from_int_rows(schema.clone(), &[vec![1, 1], vec![1, 2]]).unwrap();
        let fds = FdSet::parse(&["A->B"], &schema).unwrap();
        let engine = RepairEngine::new(instance, fds).unwrap();
        let repair = engine.repair_at(engine.delta_p_original()).unwrap();
        assert!(repair.modified_fds.holds_on(&repair.repaired_instance));
        assert_eq!(engine.stats().conflict_graph_builds, 1);
    }
}
