//! # relative-trust
//!
//! Joint repair of inconsistent data and inaccurate functional dependencies
//! under *relative trust* — a Rust implementation of Beskales, Ilyas, Golab
//! and Galiullin, *"On the Relative Trust between Inconsistent Data and
//! Inaccurate Constraints"* (ICDE 2013).
//!
//! This crate is a thin facade that re-exports the workspace crates:
//!
//! * [`relation`] — schemas, tuples, instances and V-instances;
//! * [`par`] — the parallel execution layer: the [`prelude::Parallelism`]
//!   config and deterministic fork/join maps every other crate fans out
//!   with (results are bit-identical for every thread count);
//! * [`constraints`] — functional dependencies, violation detection,
//!   conflict graphs, difference sets, weights and FD discovery;
//! * [`graph`] — undirected graphs, connected components and approximate
//!   vertex cover;
//! * [`core`] — the repair algorithms themselves (τ-constrained repairs, A*
//!   FD modification, near-optimal data repair, Range-Repair);
//! * [`baseline`] — the unified-cost comparator;
//! * [`datagen`] — census-like workload generation, error injection and
//!   repair-quality metrics.
//!
//! ## Quick start
//!
//! ```
//! use relative_trust::prelude::*;
//!
//! // The employee relation of the paper's Figure 2.
//! let schema = Schema::new("R", vec!["A", "B", "C", "D"]).unwrap();
//! let instance = Instance::from_int_rows(
//!     schema.clone(),
//!     &[vec![1, 1, 1, 1], vec![1, 2, 1, 3], vec![2, 2, 1, 1], vec![2, 3, 4, 3]],
//! )
//! .unwrap();
//! let fds = FdSet::parse(&["A->B", "C->D"], &schema).unwrap();
//!
//! // Build the repair problem once, then ask for repairs at any trust level.
//! let problem = RepairProblem::new(&instance, &fds);
//! let spectrum = find_repairs_range(&problem, 0, problem.delta_p_original(),
//!                                   &SearchConfig::default());
//! assert!(!spectrum.repairs.is_empty());
//! for repair in spectrum.materialize(&problem, 0) {
//!     assert!(repair.modified_fds.holds_on(&repair.repaired_instance));
//! }
//! ```

pub use rt_baseline as baseline;
pub use rt_constraints as constraints;
pub use rt_core as core;
pub use rt_datagen as datagen;
pub use rt_graph as graph;
pub use rt_par as par;
pub use rt_relation as relation;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use rt_baseline::{unified_cost_repair, UnifiedCostConfig, UnifiedRepair};
    pub use rt_constraints::{
        discover_fds, AttrSet, ConflictGraph, DiscoveryConfig, Fd, FdSet, Weight,
    };
    pub use rt_core::{
        find_repairs_range, find_repairs_sampling, modify_fds_astar, modify_fds_best_first,
        repair_data, repair_data_fds, repair_data_fds_relative, Parallelism, Repair,
        RepairProblem, RepairState, SearchAlgorithm, SearchConfig, WeightKind,
    };
    pub use rt_datagen::{
        evaluate_repair, generate_census_like, perturb, CensusLikeConfig, PerturbConfig,
        RepairQuality,
    };
    pub use rt_graph::{approx_vertex_cover, UndirectedGraph};
    pub use rt_relation::{AttrId, CellRef, Instance, Schema, Tuple, Value};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_full_pipeline() {
        let schema = Schema::new("R", vec!["A", "B"]).unwrap();
        let instance =
            Instance::from_int_rows(schema.clone(), &[vec![1, 1], vec![1, 2]]).unwrap();
        let fds = FdSet::parse(&["A->B"], &schema).unwrap();
        let problem = RepairProblem::new(&instance, &fds);
        let repair = repair_data_fds(&problem, problem.delta_p_original()).unwrap();
        assert!(repair.modified_fds.holds_on(&repair.repaired_instance));
    }
}
