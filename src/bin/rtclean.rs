//! `rtclean` — command-line front end for relative-trust repair.
//!
//! Reads a CSV/TSV file (typed ingestion: column types are inferred and
//! the data is parsed directly into dictionary codes) and a set of
//! functional dependencies, and either
//!
//! * produces one repair for a chosen trust level (`--tau` / `--tau-r`), or
//! * enumerates the whole spectrum of non-dominated repairs (`--spectrum`),
//!   or
//! * replays a JSON mutation log against a live engine (`apply`), keeping
//!   the prepared state maintained incrementally — the conflict graph is
//!   never rebuilt, or
//! * builds and repairs a named workload from the scenario catalog
//!   (`scenario`), or
//! * hosts repair sessions as a service (`serve`) / drives one
//!   interactively (`connect`).
//!
//! Examples:
//!
//! ```text
//! rtclean employees.csv --fd "Surname,GivenName->Income" --spectrum
//! rtclean employees.csv --fd "Surname,GivenName->Income" --tau-r 0.5 \
//!         --output repaired.csv
//! rtclean apply employees.csv --fd "Surname,GivenName->Income" \
//!         --log mutations.json --verify
//! rtclean scenario list
//! rtclean scenario hospital --seed 3
//! rtclean serve --listen 127.0.0.1:7171
//! rtclean connect 127.0.0.1:7171
//! ```
//!
//! Every subcommand shares the `rt-proto` option surface: the engine flags
//! (`--weight`, `--seed`, `--max-expansions`, `--threads`, `--shard-rows`)
//! parse through
//! [`EngineOpts::consume_flag`] whether they come from the command line,
//! the `connect` REPL, or a `create_session` wire request.

use relative_trust::prelude::*;
use std::process::ExitCode;

/// Reads the value following `args[*i]`, advancing `i` past it.
fn take_value(args: &[String], i: &mut usize) -> Result<String, String> {
    let flag = args[*i].clone();
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| format!("missing value after `{flag}`"))
}

/// Tries to consume `args[*i]` as one of the repair-selection options
/// shared by the CSV and scenario front ends
/// (`--tau`, `--tau-r`, `--spectrum`, `--output`).
fn consume_mode_option(
    args: &[String],
    i: &mut usize,
    mode: &mut Option<Mode>,
    output: &mut Option<String>,
) -> Result<bool, String> {
    match args[*i].as_str() {
        "--tau" => {
            let v = take_value(args, i)?;
            let n = v
                .parse::<usize>()
                .map_err(|_| format!("invalid --tau value `{v}`"))?;
            *mode = Some(Mode::Repair(TauSpec::Absolute(n)));
        }
        "--tau-r" => {
            let v = take_value(args, i)?;
            let f = v
                .parse::<f64>()
                .map_err(|_| format!("invalid --tau-r value `{v}`"))?;
            *mode = Some(Mode::Repair(
                TauSpec::relative(f).map_err(|e| format!("--tau-r: {e}"))?,
            ));
        }
        "--spectrum" => *mode = Some(Mode::Spectrum),
        "--output" => *output = Some(take_value(args, i)?),
        _ => return Ok(false),
    }
    Ok(true)
}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    input: String,
    fd_specs: Vec<String>,
    mode: Mode,
    output: Option<String>,
    tsv: bool,
    engine: EngineOpts,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Single repair at a budget — the wire's [`TauSpec`], so the CLI and
    /// the protocol validate trust levels through the same code.
    Repair(TauSpec),
    /// Enumerate the full spectrum of repairs.
    Spectrum,
}

const USAGE: &str = "\
usage: rtclean <input.csv> --fd \"X1,X2->A\" [--fd ...] [options]
       rtclean apply <input.csv> --fd \"X1,X2->A\" [--fd ...] --log <mutations.json> [options]
       rtclean scenario list
       rtclean scenario <name> [--seed N] [--rows N] [options]
       rtclean snapshot <input.csv> --fd <spec> [--fd ...] --output <file.snap> [options]
       rtclean restore <file.snap> [--tau N | --tau-r F | --spectrum] [--output <file.csv>]
       rtclean serve [--listen <host:port>] [--unix <path>] [serve options]
       rtclean connect [<host:port> | unix:<path>]

Input files load through the typed ingestion layer: column types
(int/float/str) are inferred, a configurable null policy applies per cell,
and the data is parsed directly into dictionary codes. Use --tsv for
tab-separated input.

`rtclean apply` replays a JSON mutation log (inserts / deletes / cell
updates / FD edits) against a live engine session, maintaining the prepared
state incrementally, then reports the session and prints the post-mutation
spectrum. With --verify it additionally rebuilds an engine from scratch on
the mutated inputs and checks the outputs are bit-identical.

`rtclean scenario <name>` builds a named workload from the scenario
catalog (seeded generation or a bundled fixture + seeded error injection)
and repairs it; `rtclean scenario list` prints the catalog.

`rtclean snapshot` builds an engine and writes its full prepared state
(dictionaries, code columns, conflict graph, heuristic warm-start) to a
versioned, checksummed binary snapshot; `rtclean restore` rebuilds the
engine from such a file — without ever rebuilding the conflict graph —
and answers repair queries from it.

`rtclean serve` hosts named repair sessions over TCP (and optionally a
Unix socket) speaking the line-delimited JSON protocol of rt-proto;
`rtclean connect` opens an interactive REPL against a running server
(type `help` at the prompt). Results over the wire are bit-identical to
in-process runs. With --data-dir, sessions are durable: every mutation is
journaled to a per-session WAL, snapshots rotate atomically, and a
restarted server recovers every session by restore + replay.

serve options:
  --listen <host:port> TCP listen address (default: 127.0.0.1:7171)
  --unix <path>        listen on a Unix socket instead of TCP
  --max-sessions <N>   resident session cap; LRU-evicts beyond it (default: 16)
  --max-cells <N>      per-session instance cell cap (default: 4000000)
  --idle-ops <N>       evict sessions idle for N logical ops; 0 = never
  --max-connections <N> concurrently served connections (default: 8)
  --data-dir <dir>     durable session store: snapshot + WAL per session,
                       recovered on restart (default: in-memory only)
  --wal-sync           fsync the WAL on every mutation (stronger durability,
                       slower acks)

scenario options:
  --seed <N>           scenario seed (generation + injection; default: 17)
  --rows <N>           override the scenario's default size

apply options:
  --log <file>         JSON mutation log to replay (required)
  --per-op | --batch   replay one engine batch per log entry (default) or
                       apply the whole log as a single atomic batch
  --verify             compare against a freshly built engine afterwards

options:
  --fd <spec>          functional dependency, e.g. \"Surname,GivenName->Income\"
                       (repeat the flag for several FDs; at least one required)
  --tsv                treat the input as tab-separated
  --tau <N>            allow at most N cell changes (single repair)
  --tau-r <F>          relative trust in [0,1]; 0 = trust the data (default: --spectrum)
  --spectrum           enumerate all non-dominated repairs
  --weight <kind>      distinct | count | entropy   (default: distinct)
  --output <file>      write the repaired instance as CSV (single-repair modes)
  --seed <N>           seed for the data-repair step (default: 0)
  --max-expansions <N> search budget (default: 500000)
  --threads <T>        worker threads: auto | serial | <count>  (default: auto)
                       results are identical for every setting; more threads
                       only make the repair faster
  --shard-rows <S>     shard the conflict-graph build: auto | off | <row
                       threshold> (default: auto = shard at 100000 rows).
                       Shards are blocking-closed row groups built
                       independently and merged; results are bit-identical
                       to the monolithic build at every setting
  --help               print this help
";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut input: Option<String> = None;
    let mut fd_specs = Vec::new();
    let mut mode: Option<Mode> = None;
    let mut output = None;
    let mut tsv = false;
    let mut engine = EngineOpts::new(0);

    let mut i = 0;
    while i < args.len() {
        if engine.consume_flag(args, &mut i)?
            || consume_mode_option(args, &mut i, &mut mode, &mut output)?
        {
            i += 1;
            continue;
        }
        match args[i].as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--fd" => fd_specs.push(take_value(args, &mut i)?),
            "--tsv" => tsv = true,
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            other => {
                if input.is_some() {
                    return Err(format!("unexpected positional argument `{other}`"));
                }
                input = Some(other.to_string());
            }
        }
        i += 1;
    }

    let input = input.ok_or_else(|| USAGE.to_string())?;
    if fd_specs.is_empty() {
        return Err("at least one --fd is required".to_string());
    }
    Ok(Options {
        input,
        fd_specs,
        mode: mode.unwrap_or(Mode::Spectrum),
        output,
        tsv,
        engine,
    })
}

/// Maps a failure from the legacy CSV writer onto the right `EngineError`
/// variant: file-access problems become `Io` (with the path), parse
/// problems keep their structured `Relation` form.
fn file_error(path: &str, e: RelationError) -> EngineError {
    match e {
        RelationError::Io(message) => EngineError::Io {
            path: path.to_string(),
            message,
        },
        other => EngineError::Relation(other),
    }
}

/// Maps a typed-ingestion failure onto the engine boundary: access
/// problems become `Io`, syntax/typing problems become `Parse` (with the
/// line number), substrate problems stay `Relation`.
fn load_error(path: &str, e: IoError) -> EngineError {
    match e {
        IoError::Io(message) => EngineError::Io {
            path: path.to_string(),
            message,
        },
        IoError::Parse { line, message } => EngineError::Parse {
            path: path.to_string(),
            line,
            message,
        },
        IoError::Relation(e) => EngineError::Relation(e),
    }
}

/// Loads the input through the typed ingestion layer (inferred column
/// types, dictionary-direct encoding) and reports what was inferred.
fn load_input(path: &str, tsv: bool) -> Result<relative_trust::io::LoadReport, EngineError> {
    let base = if tsv {
        CsvOptions::tsv()
    } else {
        CsvOptions::csv()
    };
    let report = relative_trust::io::load_path(path, &base.relation("input"))
        .map_err(|e| load_error(path, e))?;
    let types: Vec<String> = report
        .instance
        .schema()
        .attributes()
        .zip(report.columns.iter())
        .map(|((_, name), ty)| format!("{name}:{ty}"))
        .collect();
    println!(
        "loaded {} tuples × {} attributes from {path} ({} null cells)",
        report.instance.len(),
        report.instance.schema().arity(),
        report.null_cells,
    );
    println!("inferred column types: {}", types.join(", "));
    Ok(report)
}

fn run(options: &Options) -> Result<(), EngineError> {
    // File I/O and CSV parsing surface as typed `EngineError`s, never as
    // panics: bad user input exits non-zero with a one-line message.
    let instance = load_input(&options.input, options.tsv)?.instance;
    let schema = instance.schema().clone();
    let specs: Vec<&str> = options.fd_specs.iter().map(String::as_str).collect();
    let fds = FdSet::parse(&specs, &schema).map_err(EngineError::Fd)?;
    println!("FDs: {}", fds.display_with(&schema));
    if fds.holds_on(&instance) {
        println!("the data already satisfies the FDs — nothing to repair");
        return Ok(());
    }

    let engine = options
        .engine
        .configure(RepairEngine::builder(instance.clone(), fds))
        .build()?;
    let budget = engine.delta_p_original();
    println!(
        "{} conflicting tuple pairs; repairing everything by cell changes would \
         touch at most {budget} cells\n",
        engine.problem().conflict_graph().edge_count()
    );

    report_results(
        &engine,
        &instance,
        &schema,
        options.mode,
        options.output.as_deref(),
    )
}

/// Shared reporting tail of the CSV and scenario front ends: the lazy
/// spectrum sweep, or one materialized repair (optionally written out).
fn report_results(
    engine: &RepairEngine,
    instance: &Instance,
    schema: &Schema,
    mode: Mode,
    output: Option<&str>,
) -> Result<(), EngineError> {
    let budget = engine.delta_p_original();
    match mode {
        Mode::Spectrum => {
            // The sweep is lazy: each repair is materialized as it is
            // printed, off one shared Range-Repair traversal.
            let mut count = 0usize;
            for point in engine.sweep(0..=budget) {
                let point = point?;
                count += 1;
                println!(
                    "  τ ∈ [{:>4}, {:>4}]  FD cost {:>10.1}  cell changes {:>5}   {}",
                    point.tau_range.0,
                    point.tau_range.1,
                    point.repair.dist_c,
                    point.repair.data_changes(),
                    point.repair.modified_fds.display_with(schema)
                );
            }
            println!("{count} non-dominated repairs.");
            println!(
                "\nre-run with --tau <N> (or --tau-r <F>) and --output <file> to materialize one."
            );
        }
        Mode::Repair(spec) => {
            let tau = match spec {
                TauSpec::Absolute(t) => t.min(budget),
                TauSpec::Relative(f) => engine.absolute_tau(f),
            };
            let repair = engine.repair_at(tau)?;
            println!("repair for τ = {tau}:");
            println!(
                "  modified FDs : {}",
                repair.modified_fds.display_with(schema)
            );
            println!("  FD distance  : {:.1}", repair.dist_c);
            println!("  cell changes : {}", repair.data_changes());
            for cell in repair.changed_cells.iter().take(25) {
                println!(
                    "    row {} [{}]: {} -> {}",
                    cell.row,
                    schema.attr_name(cell.attr).unwrap_or("?"),
                    instance
                        .cell(*cell)
                        .map(|v| v.to_string())
                        .unwrap_or_default(),
                    repair
                        .repaired_instance
                        .cell(*cell)
                        .map(|v| v.to_string())
                        .unwrap_or_default()
                );
            }
            if repair.changed_cells.len() > 25 {
                println!("    ... and {} more", repair.changed_cells.len() - 25);
            }
            if let Some(path) = output {
                relative_trust::relation::csv::write_instance_to_path(
                    &repair.repaired_instance,
                    path,
                )
                .map_err(|e| file_error(path, e))?;
                println!("repaired instance written to {path}");
            }
        }
    }
    Ok(())
}

/// Options of the `apply` subcommand.
#[derive(Debug, Clone, PartialEq)]
struct ApplyOptions {
    input: String,
    fd_specs: Vec<String>,
    log: String,
    tsv: bool,
    /// One engine batch per log entry (streaming replay) vs one atomic
    /// batch for the whole log.
    per_op: bool,
    verify: bool,
    engine: EngineOpts,
}

fn parse_apply_args(args: &[String]) -> Result<ApplyOptions, String> {
    let mut input: Option<String> = None;
    let mut fd_specs = Vec::new();
    let mut log: Option<String> = None;
    let mut tsv = false;
    let mut per_op = true;
    let mut verify = false;
    let mut engine = EngineOpts::new(0);

    let mut i = 0;
    while i < args.len() {
        if engine.consume_flag(args, &mut i)? {
            i += 1;
            continue;
        }
        match args[i].as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--fd" => fd_specs.push(take_value(args, &mut i)?),
            "--log" => log = Some(take_value(args, &mut i)?),
            "--tsv" => tsv = true,
            "--per-op" => per_op = true,
            "--batch" => per_op = false,
            "--verify" => verify = true,
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            other => {
                if input.is_some() {
                    return Err(format!("unexpected positional argument `{other}`"));
                }
                input = Some(other.to_string());
            }
        }
        i += 1;
    }

    Ok(ApplyOptions {
        input: input.ok_or_else(|| USAGE.to_string())?,
        fd_specs: if fd_specs.is_empty() {
            return Err("at least one --fd is required".to_string());
        } else {
            fd_specs
        },
        log: log.ok_or_else(|| "apply requires --log <mutations.json>".to_string())?,
        tsv,
        per_op,
        verify,
        engine,
    })
}

fn run_apply(options: &ApplyOptions) -> Result<(), EngineError> {
    let instance = load_input(&options.input, options.tsv)?.instance;
    let schema = instance.schema().clone();
    let specs: Vec<&str> = options.fd_specs.iter().map(String::as_str).collect();
    let fds = FdSet::parse(&specs, &schema).map_err(EngineError::Fd)?;

    let log_text =
        std::fs::read_to_string(&options.log).map_err(|e| EngineError::io(&options.log, e))?;
    let ops = relative_trust::engine::parse_mutation_log(&log_text, &schema)
        .map_err(EngineError::Mutation)?;

    println!("{} log entries from {}", ops.len(), options.log);

    let mut engine = options
        .engine
        .configure(RepairEngine::builder(instance, fds))
        .build()?;

    if options.per_op {
        for (i, op) in ops.iter().enumerate() {
            let outcome = engine.apply(&MutationBatch::new().push(op.clone()))?;
            let e = outcome.effect;
            println!(
                "  op #{i:<3} rows +{}/-{}  cells ~{}  fds +{}/-{}  edges +{}/-{}  \
                 components {}  sweep cache {}",
                e.rows_inserted,
                e.rows_deleted,
                e.cells_updated,
                e.fds_added,
                e.fds_removed,
                e.edges_added,
                e.edges_removed,
                e.components_dirtied,
                if outcome.sweep_cache_retained {
                    "kept"
                } else {
                    "reset"
                }
            );
        }
    } else {
        let batch: MutationBatch = ops.iter().cloned().collect();
        let outcome = engine.apply(&batch)?;
        let e = outcome.effect;
        println!(
            "  batch of {}: rows +{}/-{}  cells ~{}  fds +{}/-{}  edges +{}/-{}  components {}",
            batch.len(),
            e.rows_inserted,
            e.rows_deleted,
            e.cells_updated,
            e.fds_added,
            e.fds_removed,
            e.edges_added,
            e.edges_removed,
            e.components_dirtied,
        );
    }

    let stats = engine.stats();
    println!(
        "\nlive session after replay: {} tuples, {} FDs, {} conflict edges",
        engine.problem().instance().len(),
        engine.problem().fd_count(),
        engine.problem().conflict_graph().edge_count()
    );
    println!(
        "  conflict graph builds : {} (rebuilds avoided: {})",
        stats.conflict_graph_builds, stats.graph_rebuild_avoided
    );
    println!(
        "  incremental edge delta: +{} / -{}  ({} components dirtied)",
        stats.edges_added, stats.edges_removed, stats.components_dirtied
    );

    let budget = engine.delta_p_original();
    println!("\npost-mutation spectrum (δP reference {budget}):");
    let spectrum = engine.spectrum()?;
    for point in &spectrum.points {
        println!(
            "  τ ∈ [{:>4}, {:>4}]  FD cost {:>10.1}  cell changes {:>5}   {}",
            point.tau_range.0,
            point.tau_range.1,
            point.repair.dist_c,
            point.repair.data_changes(),
            point.repair.modified_fds.display_with(&schema)
        );
    }

    if options.verify {
        let fresh = options
            .engine
            .configure(RepairEngine::builder(
                engine.problem().instance().clone(),
                engine.problem().sigma().clone(),
            ))
            .build()?;
        let fresh_spectrum = fresh.spectrum()?;
        if spectrum.bit_identical(&fresh_spectrum) {
            println!(
                "\nverify: OK — incremental session is bit-identical to a fresh rebuild \
                 ({} spectrum points)",
                spectrum.len()
            );
        } else {
            return Err(EngineError::Mutation(
                "verification failed: incremental session diverged from a fresh rebuild".into(),
            ));
        }
    }
    Ok(())
}

/// Options of the `scenario` subcommand. The engine seed doubles as the
/// scenario seed (generation + injection), so one `--seed` controls the
/// whole run.
#[derive(Debug, Clone, PartialEq)]
struct ScenarioOptions {
    name: String,
    rows: Option<usize>,
    mode: Mode,
    output: Option<String>,
    engine: EngineOpts,
}

fn parse_scenario_args(args: &[String]) -> Result<ScenarioOptions, String> {
    let mut name: Option<String> = None;
    let mut rows: Option<usize> = None;
    let mut mode: Option<Mode> = None;
    let mut output = None;
    let mut engine = EngineOpts::new(17);

    let mut i = 0;
    while i < args.len() {
        if engine.consume_flag(args, &mut i)?
            || consume_mode_option(args, &mut i, &mut mode, &mut output)?
        {
            i += 1;
            continue;
        }
        match args[i].as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--rows" => {
                let v = take_value(args, &mut i)?;
                rows = Some(
                    v.parse()
                        .map_err(|_| format!("invalid --rows value `{v}`"))?,
                );
            }
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            other => {
                if name.is_some() {
                    return Err(format!("unexpected positional argument `{other}`"));
                }
                name = Some(other.to_string());
            }
        }
        i += 1;
    }

    Ok(ScenarioOptions {
        name: name.ok_or_else(|| USAGE.to_string())?,
        rows,
        mode: mode.unwrap_or(Mode::Spectrum),
        output,
        engine,
    })
}

fn run_scenario(options: &ScenarioOptions) -> Result<(), EngineError> {
    if options.name == "list" {
        println!("available scenarios:");
        for info in relative_trust::scenarios::catalog() {
            println!("  {:<10} {}", info.name, info.description);
        }
        println!("\nrun one with: rtclean scenario <name> [--seed N] [--rows N]");
        return Ok(());
    }
    let scenario = relative_trust::scenarios::build(
        &options.name,
        &ScenarioConfig {
            seed: options.engine.seed,
            rows: options.rows,
        },
    )
    .map_err(EngineError::InvalidConfig)?;
    let schema = scenario.dirty.schema().clone();
    println!("scenario `{}`: {}", scenario.name, scenario.description);
    println!(
        "  {} tuples × {} attributes (seed {})",
        scenario.dirty.len(),
        schema.arity(),
        options.engine.seed
    );
    println!("  FDs: {}", scenario.dirty_fds.display_with(&schema));
    let r = &scenario.report;
    println!(
        "  injected errors: {} typos, {} swaps, {} corruptions, {} FD attrs dropped",
        r.typos, r.swaps, r.corruptions, r.fd_attrs_dropped
    );

    let engine = options
        .engine
        .configure(RepairEngine::builder(
            scenario.dirty.clone(),
            scenario.dirty_fds.clone(),
        ))
        .build()?;
    println!(
        "  {} conflicting tuple pairs; δP reference {}\n",
        engine.problem().conflict_graph().edge_count(),
        engine.delta_p_original()
    );
    report_results(
        &engine,
        &scenario.dirty,
        &schema,
        options.mode,
        options.output.as_deref(),
    )
}

/// Options of the `snapshot` subcommand: the main form's load surface
/// plus a mandatory snapshot destination.
#[derive(Debug, Clone, PartialEq)]
struct SnapshotOptions {
    input: String,
    fd_specs: Vec<String>,
    output: String,
    tsv: bool,
    engine: EngineOpts,
}

fn parse_snapshot_args(args: &[String]) -> Result<SnapshotOptions, String> {
    let mut input: Option<String> = None;
    let mut fd_specs = Vec::new();
    let mut output: Option<String> = None;
    let mut tsv = false;
    let mut engine = EngineOpts::new(0);

    let mut i = 0;
    while i < args.len() {
        if engine.consume_flag(args, &mut i)? {
            i += 1;
            continue;
        }
        match args[i].as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--fd" => fd_specs.push(take_value(args, &mut i)?),
            "--output" => output = Some(take_value(args, &mut i)?),
            "--tsv" => tsv = true,
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            other => {
                if input.is_some() {
                    return Err(format!("unexpected positional argument `{other}`"));
                }
                input = Some(other.to_string());
            }
        }
        i += 1;
    }
    if fd_specs.is_empty() {
        return Err("at least one --fd is required".to_string());
    }
    Ok(SnapshotOptions {
        input: input.ok_or_else(|| USAGE.to_string())?,
        fd_specs,
        output: output.ok_or_else(|| "snapshot requires --output <file.snap>".to_string())?,
        tsv,
        engine,
    })
}

fn run_snapshot(options: &SnapshotOptions) -> Result<(), EngineError> {
    let instance = load_input(&options.input, options.tsv)?.instance;
    let schema = instance.schema().clone();
    let specs: Vec<&str> = options.fd_specs.iter().map(String::as_str).collect();
    let fds = FdSet::parse(&specs, &schema).map_err(EngineError::Fd)?;
    let engine = options
        .engine
        .configure(RepairEngine::builder(instance, fds))
        .build()?;
    let blob = engine.snapshot()?;
    std::fs::write(&options.output, &blob).map_err(|e| EngineError::io(&options.output, e))?;
    println!(
        "snapshot: {} bytes ({} tuples, {} FDs, {} conflict edges) written to {}",
        blob.len(),
        engine.problem().instance().len(),
        engine.problem().fd_count(),
        engine.problem().conflict_graph().edge_count(),
        options.output,
    );
    println!("restore it with: rtclean restore {}", options.output);
    Ok(())
}

/// Options of the `restore` subcommand: a snapshot file plus the shared
/// repair-selection surface.
#[derive(Debug, Clone, PartialEq)]
struct RestoreOptions {
    input: String,
    mode: Mode,
    output: Option<String>,
}

fn parse_restore_args(args: &[String]) -> Result<RestoreOptions, String> {
    let mut input: Option<String> = None;
    let mut mode: Option<Mode> = None;
    let mut output = None;

    let mut i = 0;
    while i < args.len() {
        if consume_mode_option(args, &mut i, &mut mode, &mut output)? {
            i += 1;
            continue;
        }
        match args[i].as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            other => {
                if input.is_some() {
                    return Err(format!("unexpected positional argument `{other}`"));
                }
                input = Some(other.to_string());
            }
        }
        i += 1;
    }
    Ok(RestoreOptions {
        input: input.ok_or_else(|| USAGE.to_string())?,
        mode: mode.unwrap_or(Mode::Spectrum),
        output,
    })
}

fn run_restore(options: &RestoreOptions) -> Result<(), EngineError> {
    let bytes = std::fs::read(&options.input).map_err(|e| EngineError::io(&options.input, e))?;
    let engine = RepairEngine::restore(&bytes)?;
    let instance = engine.problem().instance().clone();
    let schema = instance.schema().clone();
    let stats = engine.stats();
    println!(
        "restored {} tuples × {} attributes, {} FDs, {} conflict edges from {}",
        instance.len(),
        schema.arity(),
        engine.problem().fd_count(),
        engine.problem().conflict_graph().edge_count(),
        options.input,
    );
    println!(
        "prepared state came back warm: conflict graph builds since restore = {}\n",
        stats.conflict_graph_builds
    );
    report_results(
        &engine,
        &instance,
        &schema,
        options.mode,
        options.output.as_deref(),
    )
}

/// Options of the `serve` subcommand.
#[derive(Debug, Clone, PartialEq)]
struct ServeOptions {
    listen: String,
    unix: Option<String>,
    config: ServerConfig,
}

fn parse_serve_args(args: &[String]) -> Result<ServeOptions, String> {
    let mut options = ServeOptions {
        listen: "127.0.0.1:7171".to_string(),
        unix: None,
        config: ServerConfig::default(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--listen" => options.listen = take_value(args, &mut i)?,
            "--unix" => options.unix = Some(take_value(args, &mut i)?),
            "--max-sessions" => {
                let v = take_value(args, &mut i)?;
                options.config.max_sessions = v
                    .parse()
                    .map_err(|_| format!("invalid --max-sessions value `{v}`"))?;
            }
            "--max-cells" => {
                let v = take_value(args, &mut i)?;
                options.config.max_session_cells = v
                    .parse()
                    .map_err(|_| format!("invalid --max-cells value `{v}`"))?;
            }
            "--idle-ops" => {
                let v = take_value(args, &mut i)?;
                options.config.idle_ops = v
                    .parse()
                    .map_err(|_| format!("invalid --idle-ops value `{v}`"))?;
            }
            "--max-connections" => {
                let v = take_value(args, &mut i)?;
                options.config.max_connections = v
                    .parse()
                    .map_err(|_| format!("invalid --max-connections value `{v}`"))?;
            }
            "--data-dir" => {
                options.config.data_dir = Some(std::path::PathBuf::from(take_value(args, &mut i)?));
            }
            "--wal-sync" => options.config.wal_sync = true,
            other => return Err(format!("unknown serve option `{other}`")),
        }
        i += 1;
    }
    Ok(options)
}

fn run_serve(options: &ServeOptions) -> Result<(), String> {
    let server = match &options.unix {
        Some(path) => {
            #[cfg(unix)]
            {
                Server::bind_unix_with(path, options.config.clone())
                    .map_err(|e| format!("cannot bind unix socket {path}: {e}"))?
            }
            #[cfg(not(unix))]
            {
                return Err("unix sockets are not available on this platform".to_string());
            }
        }
        None => Server::bind_tcp_with(&options.listen, options.config.clone())
            .map_err(|e| format!("cannot bind {}: {e}", options.listen))?,
    };
    match server.local_addr() {
        Some(addr) => println!("rtclean serve: listening on {addr}"),
        None => println!(
            "rtclean serve: listening on unix socket {}",
            options.unix.as_deref().unwrap_or("?")
        ),
    }
    if let Some(dir) = &options.config.data_dir {
        println!(
            "durable sessions in {} ({}); restarts recover them by restore + WAL replay",
            dir.display(),
            if options.config.wal_sync {
                "WAL fsynced per mutation"
            } else {
                "WAL buffered"
            }
        );
    }
    println!("send a `shutdown` request (or `shutdown` in the REPL) to stop");
    server.run().map_err(|e| format!("server failed: {e}"))
}

const REPL_HELP: &str = "\
commands:
  open <name> [--weight K] [--seed N] [--max-expansions N] [--threads T]
              [--shard-rows S]
                         create a session and make it current
  load <file.csv> --fd <spec> [--fd ...] [--tsv]
                         load CSV/TSV + FDs, building the session's engine
  apply <log.json>       replay a JSON mutation log as one atomic batch
  repair --tau <N> | --tau-r <F>
                         one repair at an absolute / relative budget
  sweep <lo> <hi> [<offset> [<limit>]]
                         one page of the spectrum sweep
  spectrum               the full spectrum
  stats                  the session's engine statistics
  server-stats           server-wide counters
  snapshot               rotate the session's durable snapshot now
                         (server must run with --data-dir)
  restore <name>         reattach to a session from the server's durable
                         store (after a restart or eviction)
  close                  close the current session
  ping                   liveness probe
  shutdown               stop the server
  quit | exit            leave the REPL (the session stays resident)";

/// Evaluates one REPL line against the server; returns the text to print.
/// Every engine/protocol failure comes back as `Err` with the server's
/// typed message — the REPL never panics on bad input.
fn repl_eval(client: &Client, session: &mut Option<Session>, line: &str) -> Result<String, String> {
    let tokens: Vec<String> = line.split_whitespace().map(str::to_string).collect();
    let command = tokens.first().map(String::as_str).unwrap_or("");
    let need_session = |session: &mut Option<Session>| -> Result<(), String> {
        if session.is_none() {
            return Err("no open session — use `open <name>` first".to_string());
        }
        Ok(())
    };
    match command {
        "help" => Ok(REPL_HELP.to_string()),
        "ping" => {
            client.ping().map_err(|e| e.to_string())?;
            Ok("pong".to_string())
        }
        "open" => {
            let name = tokens
                .get(1)
                .filter(|t| !t.starts_with("--"))
                .ok_or("usage: open <name> [engine flags]")?
                .clone();
            // The REPL parses engine flags through the same EngineOpts
            // path as the command line and the wire.
            let mut opts = EngineOpts::new(0);
            let mut i = 2;
            while i < tokens.len() {
                if !opts.consume_flag(&tokens, &mut i)? {
                    return Err(format!("unknown open option `{}`", tokens[i]));
                }
                i += 1;
            }
            let created = client
                .create_session(&name, opts)
                .map_err(|e| e.to_string())?;
            *session = Some(created);
            Ok(format!("session `{name}` opened"))
        }
        "load" => {
            need_session(session)?;
            let path = tokens
                .get(1)
                .filter(|t| !t.starts_with("--"))
                .ok_or("usage: load <file.csv> --fd <spec> [--fd ...] [--tsv]")?;
            let mut fds = Vec::new();
            let mut tsv = false;
            let mut i = 2;
            while i < tokens.len() {
                match tokens[i].as_str() {
                    "--fd" => fds.push(take_value(&tokens, &mut i)?),
                    "--tsv" => tsv = true,
                    other => return Err(format!("unknown load option `{other}`")),
                }
                i += 1;
            }
            if fds.is_empty() {
                return Err("at least one --fd is required".to_string());
            }
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let specs: Vec<&str> = fds.iter().map(String::as_str).collect();
            let active = session.as_mut().expect("checked above");
            let summary = active
                .load_csv(&text, tsv, &specs)
                .map_err(|e| e.to_string())?;
            Ok(format!(
                "loaded {} rows × {} attributes ({}; {} null cells)\n\
                 {} conflict edges; δP reference {}",
                summary.rows,
                summary.attributes.len(),
                summary
                    .attributes
                    .iter()
                    .zip(summary.types.iter())
                    .map(|(a, t)| format!("{a}:{t}"))
                    .collect::<Vec<_>>()
                    .join(", "),
                summary.null_cells,
                summary.conflict_edges,
                summary.delta_p,
            ))
        }
        "apply" => {
            need_session(session)?;
            let path = tokens.get(1).ok_or("usage: apply <log.json>")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let active = session.as_mut().expect("checked above");
            let (effect, retained) = active.apply_text(&text).map_err(|e| e.to_string())?;
            Ok(format!(
                "applied: rows +{}/-{}  cells ~{}  fds +{}/-{}  edges +{}/-{}  sweep cache {}",
                effect.rows_inserted,
                effect.rows_deleted,
                effect.cells_updated,
                effect.fds_added,
                effect.fds_removed,
                effect.edges_added,
                effect.edges_removed,
                if retained { "kept" } else { "reset" },
            ))
        }
        "repair" => {
            need_session(session)?;
            let mut spec: Option<TauSpec> = None;
            let mut i = 1;
            while i < tokens.len() {
                match tokens[i].as_str() {
                    "--tau" => {
                        let v = take_value(&tokens, &mut i)?;
                        spec = Some(TauSpec::Absolute(
                            v.parse()
                                .map_err(|_| format!("invalid --tau value `{v}`"))?,
                        ));
                    }
                    "--tau-r" => {
                        let v = take_value(&tokens, &mut i)?;
                        let f: f64 = v
                            .parse()
                            .map_err(|_| format!("invalid --tau-r value `{v}`"))?;
                        spec = Some(TauSpec::relative(f).map_err(|e| format!("--tau-r: {e}"))?);
                    }
                    other => return Err(format!("unknown repair option `{other}`")),
                }
                i += 1;
            }
            let spec = spec.ok_or("usage: repair --tau <N> | --tau-r <F>")?;
            let active = session.as_mut().expect("checked above");
            let schema = active.schema().cloned();
            let repair = match spec {
                TauSpec::Absolute(t) => active.repair_at(t),
                TauSpec::Relative(f) => active.repair_at_relative(f),
            }
            .map_err(|e| e.to_string())?;
            let fds = match &schema {
                Some(s) => repair.modified_fds.display_with(s),
                None => format!("{} FDs", repair.modified_fds.len()),
            };
            Ok(format!(
                "repair for τ = {}:\n  modified FDs : {}\n  FD distance  : {:.1}\n  cell changes : {}",
                repair.tau,
                fds,
                repair.dist_c,
                repair.data_changes(),
            ))
        }
        "sweep" | "spectrum" => {
            need_session(session)?;
            let active = session.as_mut().expect("checked above");
            let (points, trailer) = if command == "spectrum" {
                let spectrum = active.spectrum().map_err(|e| e.to_string())?;
                let n = spectrum.len();
                (spectrum.points, format!("{n} non-dominated repairs."))
            } else {
                let parse_at = |idx: usize, what: &str, default: usize| -> Result<usize, String> {
                    match tokens.get(idx) {
                        None => Ok(default),
                        Some(v) => v.parse().map_err(|_| format!("invalid {what} `{v}`")),
                    }
                };
                let lo = parse_at(1, "lo", 0)?;
                let hi = match tokens.get(2) {
                    Some(v) => v.parse().map_err(|_| format!("invalid hi `{v}`"))?,
                    None => return Err("usage: sweep <lo> <hi> [<offset> [<limit>]]".to_string()),
                };
                let offset = parse_at(3, "offset", 0)?;
                let limit = parse_at(4, "limit", 0)?;
                let (points, done) = active
                    .sweep_page(lo, hi, offset, limit)
                    .map_err(|e| e.to_string())?;
                let n = points.len();
                (
                    points,
                    format!("{n} points{}", if done { " (range exhausted)" } else { "" }),
                )
            };
            let schema = active.schema().cloned();
            let mut out = String::new();
            for point in &points {
                let fds = match &schema {
                    Some(s) => point.repair.modified_fds.display_with(s),
                    None => format!("{} FDs", point.repair.modified_fds.len()),
                };
                out.push_str(&format!(
                    "  τ ∈ [{:>4}, {:>4}]  FD cost {:>10.1}  cell changes {:>5}   {}\n",
                    point.tau_range.0,
                    point.tau_range.1,
                    point.repair.dist_c,
                    point.repair.data_changes(),
                    fds,
                ));
            }
            out.push_str(&trailer);
            Ok(out)
        }
        "stats" => {
            need_session(session)?;
            let active = session.as_mut().expect("checked above");
            let stats = active.stats().map_err(|e| e.to_string())?;
            Ok(format!(
                "conflict graph builds {} (rebuilds avoided {})\n\
                 repair queries {}  sweeps {}  points {}\n\
                 states expanded {}  generated {}  truncated {}",
                stats.conflict_graph_builds,
                stats.graph_rebuild_avoided,
                stats.repair_queries,
                stats.sweeps_started,
                stats.points_materialized,
                stats.states_expanded,
                stats.states_generated,
                stats.truncated,
            ))
        }
        "server-stats" => {
            let counters = client.server_stats().map_err(|e| e.to_string())?;
            Ok(counters
                .iter()
                .map(|(name, value)| format!("  {name:<20} {value}"))
                .collect::<Vec<_>>()
                .join("\n"))
        }
        "snapshot" => {
            need_session(session)?;
            let active = session.as_mut().expect("checked above");
            let bytes = active.snapshot().map_err(|e| e.to_string())?;
            Ok(format!("snapshot rotated ({bytes} bytes)"))
        }
        "restore" => {
            let name = tokens
                .get(1)
                .filter(|t| !t.starts_with("--"))
                .ok_or("usage: restore <name>")?
                .clone();
            let (restored, summary, replayed) =
                client.restore_session(&name).map_err(|e| e.to_string())?;
            *session = Some(restored);
            Ok(format!(
                "session `{name}` restored: {} rows × {} attributes, {} WAL records replayed",
                summary.rows,
                summary.attributes.len(),
                replayed,
            ))
        }
        "close" => {
            need_session(session)?;
            let active = session.take().expect("checked above");
            let name = active.name().to_string();
            active.close().map_err(|e| e.to_string())?;
            Ok(format!("session `{name}` closed"))
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            *session = None;
            Ok("server is shutting down".to_string())
        }
        "" => Ok(String::new()),
        other => Err(format!("unknown command `{other}` — type `help`")),
    }
}

fn run_connect(target: &str) -> Result<(), String> {
    let client = Client::connect(target).map_err(|e| format!("cannot connect to {target}: {e}"))?;
    client.ping().map_err(|e| e.to_string())?;
    println!("connected to {target} — type `help` for commands, `quit` to leave");
    let mut session: Option<Session> = None;
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        use std::io::Write;
        print!("rt> ");
        std::io::stdout().flush().ok();
        line.clear();
        match stdin.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => return Err(format!("stdin: {e}")),
        }
        let trimmed = line.trim();
        if trimmed == "quit" || trimmed == "exit" {
            break;
        }
        match repl_eval(&client, &mut session, trimmed) {
            Ok(output) if output.is_empty() => {}
            Ok(output) => println!("{output}"),
            Err(message) => eprintln!("error: {message}"),
        }
        if trimmed == "shutdown" {
            break;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        return match parse_serve_args(&args[1..]) {
            Ok(options) => match run_serve(&options) {
                Ok(()) => ExitCode::SUCCESS,
                Err(message) => {
                    eprintln!("error: {message}");
                    ExitCode::FAILURE
                }
            },
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("connect") {
        let target = args.get(1).cloned().unwrap_or("127.0.0.1:7171".to_string());
        if args.len() > 2 || target.starts_with("--") && target != "--help" {
            eprintln!("usage: rtclean connect [<host:port> | unix:<path>]");
            return ExitCode::FAILURE;
        }
        if target == "--help" {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
        return match run_connect(&target) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("scenario") {
        return match parse_scenario_args(&args[1..]) {
            Ok(options) => match run_scenario(&options) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("snapshot") {
        return match parse_snapshot_args(&args[1..]) {
            Ok(options) => match run_snapshot(&options) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("restore") {
        return match parse_restore_args(&args[1..]) {
            Ok(options) => match run_restore(&options) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("apply") {
        return match parse_apply_args(&args[1..]) {
            Ok(options) => match run_apply(&options) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    match parse_args(&args) {
        Ok(options) => match run(&options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_minimal_spectrum_invocation() {
        let o = parse_args(&args(&["data.csv", "--fd", "A->B"])).unwrap();
        assert_eq!(o.input, "data.csv");
        assert_eq!(o.fd_specs, vec!["A->B".to_string()]);
        assert_eq!(o.mode, Mode::Spectrum);
        assert_eq!(o.engine.weight, WeightKind::DistinctCount);
        assert_eq!(o.engine.seed, 0);
    }

    #[test]
    fn parses_full_single_repair_invocation() {
        let o = parse_args(&args(&[
            "d.csv",
            "--fd",
            "A->B",
            "--fd",
            "C,D->E",
            "--tau-r",
            "0.25",
            "--weight",
            "entropy",
            "--output",
            "out.csv",
            "--seed",
            "9",
            "--max-expansions",
            "1234",
        ]))
        .unwrap();
        assert_eq!(o.fd_specs.len(), 2);
        assert_eq!(o.mode, Mode::Repair(TauSpec::Relative(0.25)));
        assert_eq!(o.engine.weight, WeightKind::Entropy);
        assert_eq!(o.output.as_deref(), Some("out.csv"));
        assert_eq!(o.engine.seed, 9);
        assert_eq!(o.engine.max_expansions, 1234);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&["--fd", "A->B"])).is_err()); // no input file
        assert!(parse_args(&args(&["d.csv"])).is_err()); // no FDs
        assert!(parse_args(&args(&["d.csv", "--fd", "A->B", "--tau", "x"])).is_err());
        assert!(parse_args(&args(&["d.csv", "--fd", "A->B", "--tau-r", "1.5"])).is_err());
        assert!(parse_args(&args(&["d.csv", "--fd", "A->B", "--weight", "bogus"])).is_err());
        assert!(parse_args(&args(&["d.csv", "--fd", "A->B", "--bogus"])).is_err());
        assert!(parse_args(&args(&["d.csv", "extra.csv", "--fd", "A->B"])).is_err());
        assert!(parse_args(&args(&["--help"])).is_err());
    }

    #[test]
    fn tau_mode_parses_absolute_budget() {
        let o = parse_args(&args(&["d.csv", "--fd", "A->B", "--tau", "7"])).unwrap();
        assert_eq!(o.mode, Mode::Repair(TauSpec::Absolute(7)));
    }

    #[test]
    fn threads_flag_parses_all_spellings() {
        let o = parse_args(&args(&["d.csv", "--fd", "A->B"])).unwrap();
        assert_eq!(o.engine.threads, Parallelism::Auto);
        let o = parse_args(&args(&["d.csv", "--fd", "A->B", "--threads", "serial"])).unwrap();
        assert_eq!(o.engine.threads, Parallelism::Serial);
        let o = parse_args(&args(&["d.csv", "--fd", "A->B", "--threads", "4"])).unwrap();
        assert_eq!(o.engine.threads, Parallelism::Fixed(4));
        assert!(parse_args(&args(&["d.csv", "--fd", "A->B", "--threads", "x"])).is_err());
    }

    #[test]
    fn missing_input_file_is_a_typed_error_not_a_panic() {
        let options = Options {
            input: "/nonexistent/definitely_missing.csv".to_string(),
            fd_specs: vec!["A->B".to_string()],
            mode: Mode::Repair(TauSpec::Absolute(1)),
            output: None,
            tsv: false,
            engine: EngineOpts {
                weight: WeightKind::AttrCount,
                seed: 0,
                max_expansions: 1000,
                threads: Parallelism::Serial,
                shard_rows: ShardRows::Auto,
            },
        };
        let err = run(&options).unwrap_err();
        assert!(matches!(err, EngineError::Io { .. }), "got {err:?}");
        assert!(err.to_string().contains("definitely_missing.csv"));
    }

    #[test]
    fn malformed_csv_is_a_typed_error_not_a_panic() {
        let dir = std::env::temp_dir().join("rtclean_test_bad_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("ragged.csv");
        // Second data row has the wrong number of fields.
        std::fs::write(&input, "A,B\n1,1\n2\n").unwrap();
        let options = Options {
            input: input.to_string_lossy().to_string(),
            fd_specs: vec!["A->B".to_string()],
            mode: Mode::Repair(TauSpec::Absolute(1)),
            output: None,
            tsv: false,
            engine: EngineOpts {
                weight: WeightKind::AttrCount,
                seed: 0,
                max_expansions: 1000,
                threads: Parallelism::Serial,
                shard_rows: ShardRows::Auto,
            },
        };
        let err = run(&options).unwrap_err();
        // A parse failure is not an access failure: it surfaces as the
        // structured Parse error with the offending line, not Io.
        assert!(
            matches!(err, EngineError::Parse { line: 3, .. }),
            "got {err:?}"
        );
        assert!(err.to_string().contains("line 3"));
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn unknown_fd_attribute_is_a_typed_error() {
        let dir = std::env::temp_dir().join("rtclean_test_bad_fd");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        std::fs::write(&input, "A,B\n1,1\n1,2\n").unwrap();
        let options = Options {
            input: input.to_string_lossy().to_string(),
            fd_specs: vec!["A->Nope".to_string()],
            mode: Mode::Spectrum,
            output: None,
            tsv: false,
            engine: EngineOpts {
                weight: WeightKind::AttrCount,
                seed: 0,
                max_expansions: 1000,
                threads: Parallelism::Serial,
                shard_rows: ShardRows::Auto,
            },
        };
        let err = run(&options).unwrap_err();
        assert!(matches!(err, EngineError::Fd(_)), "got {err:?}");
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn apply_arg_parsing() {
        let o = parse_apply_args(&args(&[
            "d.csv", "--fd", "A->B", "--log", "m.json", "--verify", "--batch", "--weight", "count",
        ]))
        .unwrap();
        assert_eq!(o.input, "d.csv");
        assert_eq!(o.log, "m.json");
        assert!(o.verify);
        assert!(!o.per_op);
        assert_eq!(o.engine.weight, WeightKind::AttrCount);
        // apply accepts --tsv like the main form (the usage text promises
        // it for input files generally).
        let o = parse_apply_args(&args(&[
            "d.tsv", "--fd", "A->B", "--log", "m.json", "--tsv",
        ]))
        .unwrap();
        assert!(o.tsv);
        // --log is mandatory, as is an input and at least one FD.
        assert!(parse_apply_args(&args(&["d.csv", "--fd", "A->B"])).is_err());
        assert!(parse_apply_args(&args(&["d.csv", "--log", "m.json"])).is_err());
        assert!(parse_apply_args(&args(&["--fd", "A->B", "--log", "m.json"])).is_err());
        assert!(parse_apply_args(&args(&["d.csv", "--fd", "A->B", "--log"])).is_err());
    }

    #[test]
    fn apply_replays_a_log_and_verifies() {
        let dir = std::env::temp_dir().join("rtclean_test_apply");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        let log = dir.join("mutations.json");
        std::fs::write(&input, "A,B,C\n1,1,1\n1,2,1\n2,5,3\n2,5,4\n").unwrap();
        std::fs::write(
            &log,
            r#"[
              {"op": "insert", "rows": [[1, 3, 9], [7, 7, 7]]},
              {"op": "update", "row": 0, "attr": "B", "value": 2},
              {"op": "delete", "rows": [3]},
              {"op": "add_fd", "fd": "C->B"},
              {"op": "remove_fd", "index": 0}
            ]"#,
        )
        .unwrap();
        for per_op in [true, false] {
            let options = ApplyOptions {
                input: input.to_string_lossy().to_string(),
                fd_specs: vec!["A->B".to_string()],
                log: log.to_string_lossy().to_string(),
                tsv: false,
                per_op,
                verify: true,
                engine: EngineOpts {
                    weight: WeightKind::AttrCount,
                    seed: 3,
                    max_expansions: 100_000,
                    threads: Parallelism::Serial,
                    shard_rows: ShardRows::Auto,
                },
            };
            run_apply(&options).unwrap();
        }
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&log).ok();
    }

    #[test]
    fn apply_rejects_invalid_logs_without_mutating() {
        let dir = std::env::temp_dir().join("rtclean_test_apply_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        let log = dir.join("bad.json");
        std::fs::write(&input, "A,B\n1,1\n1,2\n").unwrap();
        std::fs::write(&log, r#"[{"op": "delete", "rows": [99]}]"#).unwrap();
        let options = ApplyOptions {
            input: input.to_string_lossy().to_string(),
            fd_specs: vec!["A->B".to_string()],
            log: log.to_string_lossy().to_string(),
            tsv: false,
            per_op: true,
            verify: false,
            engine: EngineOpts {
                weight: WeightKind::AttrCount,
                seed: 0,
                max_expansions: 10_000,
                threads: Parallelism::Serial,
                shard_rows: ShardRows::Auto,
            },
        };
        let err = run_apply(&options).unwrap_err();
        assert!(matches!(err, EngineError::Mutation(_)), "got {err:?}");
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&log).ok();
    }

    #[test]
    fn scenario_arg_parsing() {
        let o = parse_scenario_args(&args(&[
            "hospital",
            "--seed",
            "9",
            "--rows",
            "25",
            "--tau",
            "2",
            "--weight",
            "count",
            "--threads",
            "serial",
        ]))
        .unwrap();
        assert_eq!(o.name, "hospital");
        assert_eq!(o.engine.seed, 9);
        assert_eq!(o.rows, Some(25));
        assert_eq!(o.mode, Mode::Repair(TauSpec::Absolute(2)));
        assert_eq!(o.engine.weight, WeightKind::AttrCount);
        // Defaults: catalog seed, scenario-default rows, spectrum mode.
        let o = parse_scenario_args(&args(&["sensors"])).unwrap();
        assert_eq!(o.engine.seed, 17);
        assert_eq!(o.rows, None);
        assert_eq!(o.mode, Mode::Spectrum);
        assert!(parse_scenario_args(&args(&[])).is_err());
        assert!(parse_scenario_args(&args(&["sensors", "--rows", "x"])).is_err());
        assert!(parse_scenario_args(&args(&["sensors", "--bogus"])).is_err());
    }

    #[test]
    fn scenario_list_and_unknown_names() {
        let list = ScenarioOptions {
            name: "list".to_string(),
            rows: None,
            mode: Mode::Spectrum,
            output: None,
            engine: EngineOpts {
                weight: WeightKind::DistinctCount,
                seed: 17,
                max_expansions: 1000,
                threads: Parallelism::Serial,
                shard_rows: ShardRows::Auto,
            },
        };
        run_scenario(&list).unwrap();
        let err = run_scenario(&ScenarioOptions {
            name: "nope".to_string(),
            ..list
        })
        .unwrap_err();
        assert!(matches!(err, EngineError::InvalidConfig(_)), "got {err:?}");
        assert!(err.to_string().contains("hospital"));
    }

    #[test]
    fn scenario_end_to_end_single_repair() {
        // τ far above δP: the search accepts the unmodified FDs immediately
        // and only the data-repair half runs, keeping this test fast in
        // debug builds.
        let options = ScenarioOptions {
            name: "hospital".to_string(),
            rows: Some(30),
            mode: Mode::Repair(TauSpec::Absolute(100_000)),
            output: None,
            engine: EngineOpts {
                weight: WeightKind::AttrCount,
                seed: 3,
                max_expansions: 200_000,
                threads: Parallelism::Serial,
                shard_rows: ShardRows::Auto,
            },
        };
        run_scenario(&options).unwrap();
    }

    #[test]
    fn end_to_end_on_a_temporary_csv() {
        // Write a tiny violating instance, run the single-repair path.
        let dir = std::env::temp_dir().join("rtclean_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        let output = dir.join("out.csv");
        std::fs::write(&input, "A,B\n1,1\n1,2\n2,5\n").unwrap();
        let options = Options {
            input: input.to_string_lossy().to_string(),
            fd_specs: vec!["A->B".to_string()],
            mode: Mode::Repair(TauSpec::Absolute(2)),
            output: Some(output.to_string_lossy().to_string()),
            tsv: false,
            engine: EngineOpts {
                weight: WeightKind::AttrCount,
                seed: 1,
                max_expansions: 10_000,
                threads: Parallelism::Fixed(2),
                shard_rows: ShardRows::Auto,
            },
        };
        run(&options).unwrap();
        let repaired =
            relative_trust::relation::csv::read_instance_from_path("out", &output).unwrap();
        assert_eq!(repaired.len(), 3);
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn serve_args_parse_every_flag() {
        let options = parse_serve_args(&args(&[
            "--listen",
            "0.0.0.0:9000",
            "--max-sessions",
            "3",
            "--max-cells",
            "1000",
            "--idle-ops",
            "50",
            "--max-connections",
            "2",
        ]))
        .unwrap();
        assert_eq!(options.listen, "0.0.0.0:9000");
        assert_eq!(options.unix, None);
        assert_eq!(options.config.max_sessions, 3);
        assert_eq!(options.config.max_session_cells, 1000);
        assert_eq!(options.config.idle_ops, 50);
        assert_eq!(options.config.max_connections, 2);

        let defaults = parse_serve_args(&[]).unwrap();
        assert_eq!(defaults.listen, "127.0.0.1:7171");
        assert_eq!(defaults.config, ServerConfig::default());

        assert!(parse_serve_args(&args(&["--max-sessions", "x"])).is_err());
        assert!(parse_serve_args(&args(&["--bogus"])).is_err());
    }

    #[test]
    fn repl_drives_a_loopback_server_end_to_end() {
        let server = Server::bind_tcp_with("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let worker = std::thread::spawn(move || server.run());

        let dir = std::env::temp_dir().join("rtclean_repl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("in.csv");
        std::fs::write(&csv, "A,B\n1,1\n1,2\n2,5\n").unwrap();

        let client = Client::connect(&addr.to_string()).unwrap();
        let mut session: Option<Session> = None;
        let eval = |session: &mut Option<Session>, line: &str| repl_eval(&client, session, line);

        assert_eq!(eval(&mut session, "ping").unwrap(), "pong");
        assert!(eval(&mut session, "repair --tau 1")
            .unwrap_err()
            .contains("no open session"));
        assert!(eval(&mut session, "frobnicate")
            .unwrap_err()
            .contains("unknown command"));
        assert!(eval(&mut session, "help").unwrap().contains("spectrum"));

        eval(&mut session, "open s1 --seed 1 --threads serial").unwrap();
        let loaded = eval(
            &mut session,
            &format!("load {} --fd A->B", csv.to_string_lossy()),
        )
        .unwrap();
        assert!(loaded.contains("3 rows"), "got {loaded}");
        // Bad relative trust is rejected by the shared TauSpec validation.
        assert!(eval(&mut session, "repair --tau-r 1.5")
            .unwrap_err()
            .contains("[0,1]"));
        let repaired = eval(&mut session, "repair --tau 1").unwrap();
        assert!(repaired.contains("cell changes"), "got {repaired}");
        let spectrum = eval(&mut session, "spectrum").unwrap();
        assert!(spectrum.contains("non-dominated"), "got {spectrum}");
        let stats = eval(&mut session, "stats").unwrap();
        assert!(stats.contains("conflict graph builds 1"), "got {stats}");
        let counters = eval(&mut session, "server-stats").unwrap();
        assert!(counters.contains("sessions_created"), "got {counters}");
        assert_eq!(eval(&mut session, "close").unwrap(), "session `s1` closed");
        assert!(session.is_none());

        assert_eq!(
            eval(&mut session, "shutdown").unwrap(),
            "server is shutting down"
        );
        worker.join().unwrap().unwrap();
        assert!(handle.is_shutting_down());
        std::fs::remove_file(&csv).ok();
    }
}
