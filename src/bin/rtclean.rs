//! `rtclean` — command-line front end for relative-trust repair.
//!
//! Reads a CSV file and a set of functional dependencies, and either
//!
//! * produces one repair for a chosen trust level (`--tau` / `--tau-r`), or
//! * enumerates the whole spectrum of non-dominated repairs (`--spectrum`),
//!   or
//! * replays a JSON mutation log against a live engine (`apply`), keeping
//!   the prepared state maintained incrementally — the conflict graph is
//!   never rebuilt.
//!
//! Examples:
//!
//! ```text
//! rtclean employees.csv --fd "Surname,GivenName->Income" --spectrum
//! rtclean employees.csv --fd "Surname,GivenName->Income" --tau-r 0.5 \
//!         --output repaired.csv
//! rtclean apply employees.csv --fd "Surname,GivenName->Income" \
//!         --log mutations.json --verify
//! ```

use relative_trust::prelude::*;
use std::process::ExitCode;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    input: String,
    fd_specs: Vec<String>,
    mode: Mode,
    weight: WeightKind,
    output: Option<String>,
    seed: u64,
    max_expansions: usize,
    threads: Parallelism,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Single repair with an absolute cell budget.
    Tau(usize),
    /// Single repair with a relative trust level in `[0, 1]`.
    TauRelative(f64),
    /// Enumerate the full spectrum of repairs.
    Spectrum,
}

const USAGE: &str = "\
usage: rtclean <input.csv> --fd \"X1,X2->A\" [--fd ...] [options]
       rtclean apply <input.csv> --fd \"X1,X2->A\" [--fd ...] --log <mutations.json> [options]

`rtclean apply` replays a JSON mutation log (inserts / deletes / cell
updates / FD edits) against a live engine session, maintaining the prepared
state incrementally, then reports the session and prints the post-mutation
spectrum. With --verify it additionally rebuilds an engine from scratch on
the mutated inputs and checks the outputs are bit-identical.

apply options:
  --log <file>         JSON mutation log to replay (required)
  --per-op | --batch   replay one engine batch per log entry (default) or
                       apply the whole log as a single atomic batch
  --verify             compare against a freshly built engine afterwards

options:
  --fd <spec>          functional dependency, e.g. \"Surname,GivenName->Income\"
                       (repeat the flag for several FDs; at least one required)
  --tau <N>            allow at most N cell changes (single repair)
  --tau-r <F>          relative trust in [0,1]; 0 = trust the data (default: --spectrum)
  --spectrum           enumerate all non-dominated repairs
  --weight <kind>      distinct | count | entropy   (default: distinct)
  --output <file>      write the repaired instance as CSV (single-repair modes)
  --seed <N>           seed for the data-repair step (default: 0)
  --max-expansions <N> search budget (default: 500000)
  --threads <T>        worker threads: auto | serial | <count>  (default: auto)
                       results are identical for every setting; more threads
                       only make the repair faster
  --help               print this help
";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut input: Option<String> = None;
    let mut fd_specs = Vec::new();
    let mut mode: Option<Mode> = None;
    let mut weight = WeightKind::DistinctCount;
    let mut output = None;
    let mut seed = 0u64;
    let mut max_expansions = 500_000usize;
    let mut threads = Parallelism::Auto;

    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after `{arg}`"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--fd" => fd_specs.push(take_value(&mut i)?),
            "--tau" => {
                let v = take_value(&mut i)?;
                let n = v
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --tau value `{v}`"))?;
                mode = Some(Mode::Tau(n));
            }
            "--tau-r" => {
                let v = take_value(&mut i)?;
                let f = v
                    .parse::<f64>()
                    .map_err(|_| format!("invalid --tau-r value `{v}`"))?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(format!("--tau-r must be in [0,1], got {f}"));
                }
                mode = Some(Mode::TauRelative(f));
            }
            "--spectrum" => mode = Some(Mode::Spectrum),
            "--weight" => {
                let v = take_value(&mut i)?;
                weight = match v.as_str() {
                    "distinct" => WeightKind::DistinctCount,
                    "count" => WeightKind::AttrCount,
                    "entropy" => WeightKind::Entropy,
                    other => return Err(format!("unknown --weight `{other}`")),
                };
            }
            "--output" => output = Some(take_value(&mut i)?),
            "--seed" => {
                let v = take_value(&mut i)?;
                seed = v
                    .parse()
                    .map_err(|_| format!("invalid --seed value `{v}`"))?;
            }
            "--max-expansions" => {
                let v = take_value(&mut i)?;
                max_expansions = v
                    .parse()
                    .map_err(|_| format!("invalid --max-expansions value `{v}`"))?;
            }
            "--threads" => {
                let v = take_value(&mut i)?;
                threads = Parallelism::parse(&v).map_err(|e| format!("--threads: {e}"))?;
            }
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            other => {
                if input.is_some() {
                    return Err(format!("unexpected positional argument `{other}`"));
                }
                input = Some(other.to_string());
            }
        }
        i += 1;
    }

    let input = input.ok_or_else(|| USAGE.to_string())?;
    if fd_specs.is_empty() {
        return Err("at least one --fd is required".to_string());
    }
    Ok(Options {
        input,
        fd_specs,
        mode: mode.unwrap_or(Mode::Spectrum),
        weight,
        output,
        seed,
        max_expansions,
        threads,
    })
}

/// Maps a failure from the CSV reader onto the right `EngineError` variant:
/// file-access problems become `Io` (with the path), parse problems keep
/// their structured `Relation` form.
fn file_error(path: &str, e: RelationError) -> EngineError {
    match e {
        RelationError::Io(message) => EngineError::Io {
            path: path.to_string(),
            message,
        },
        other => EngineError::Relation(other),
    }
}

fn run(options: &Options) -> Result<(), EngineError> {
    // File I/O and CSV parsing surface as typed `EngineError`s, never as
    // panics: bad user input exits non-zero with a one-line message.
    let instance = relative_trust::relation::csv::read_instance_from_path("input", &options.input)
        .map_err(|e| file_error(&options.input, e))?;
    let schema = instance.schema().clone();
    let specs: Vec<&str> = options.fd_specs.iter().map(String::as_str).collect();
    let fds = FdSet::parse(&specs, &schema).map_err(EngineError::Fd)?;

    println!(
        "loaded {} tuples × {} attributes from {}",
        instance.len(),
        schema.arity(),
        options.input
    );
    println!("FDs: {}", fds.display_with(&schema));
    if fds.holds_on(&instance) {
        println!("the data already satisfies the FDs — nothing to repair");
        return Ok(());
    }

    let engine = RepairEngine::builder(instance.clone(), fds)
        .weight(options.weight)
        .parallelism(options.threads)
        .max_expansions(options.max_expansions)
        .seed(options.seed)
        .build()?;
    let budget = engine.delta_p_original();
    println!(
        "{} conflicting tuple pairs; repairing everything by cell changes would \
         touch at most {budget} cells\n",
        engine.problem().conflict_graph().edge_count()
    );

    match options.mode {
        Mode::Spectrum => {
            // The sweep is lazy: each repair is materialized as it is
            // printed, off one shared Range-Repair traversal.
            let mut count = 0usize;
            for point in engine.sweep(0..=budget) {
                let point = point?;
                count += 1;
                println!(
                    "  τ ∈ [{:>4}, {:>4}]  FD cost {:>10.1}  cell changes {:>5}   {}",
                    point.tau_range.0,
                    point.tau_range.1,
                    point.repair.dist_c,
                    point.repair.data_changes(),
                    point.repair.modified_fds.display_with(&schema)
                );
            }
            println!("{count} non-dominated repairs.");
            println!(
                "\nre-run with --tau <N> (or --tau-r <F>) and --output <file> to materialize one."
            );
        }
        Mode::Tau(_) | Mode::TauRelative(_) => {
            let tau = match options.mode {
                Mode::Tau(t) => t.min(budget),
                Mode::TauRelative(f) => engine.absolute_tau(f),
                Mode::Spectrum => unreachable!(),
            };
            let repair = engine.repair_at(tau)?;
            println!("repair for τ = {tau}:");
            println!(
                "  modified FDs : {}",
                repair.modified_fds.display_with(&schema)
            );
            println!("  FD distance  : {:.1}", repair.dist_c);
            println!("  cell changes : {}", repair.data_changes());
            for cell in repair.changed_cells.iter().take(25) {
                println!(
                    "    row {} [{}]: {} -> {}",
                    cell.row,
                    schema.attr_name(cell.attr).unwrap_or("?"),
                    instance
                        .cell(*cell)
                        .map(|v| v.to_string())
                        .unwrap_or_default(),
                    repair
                        .repaired_instance
                        .cell(*cell)
                        .map(|v| v.to_string())
                        .unwrap_or_default()
                );
            }
            if repair.changed_cells.len() > 25 {
                println!("    ... and {} more", repair.changed_cells.len() - 25);
            }
            if let Some(path) = &options.output {
                relative_trust::relation::csv::write_instance_to_path(
                    &repair.repaired_instance,
                    path,
                )
                .map_err(|e| file_error(path, e))?;
                println!("repaired instance written to {path}");
            }
        }
    }
    Ok(())
}

/// Options of the `apply` subcommand.
#[derive(Debug, Clone, PartialEq)]
struct ApplyOptions {
    input: String,
    fd_specs: Vec<String>,
    log: String,
    weight: WeightKind,
    seed: u64,
    max_expansions: usize,
    threads: Parallelism,
    /// One engine batch per log entry (streaming replay) vs one atomic
    /// batch for the whole log.
    per_op: bool,
    verify: bool,
}

fn parse_apply_args(args: &[String]) -> Result<ApplyOptions, String> {
    let mut input: Option<String> = None;
    let mut fd_specs = Vec::new();
    let mut log: Option<String> = None;
    let mut weight = WeightKind::DistinctCount;
    let mut seed = 0u64;
    let mut max_expansions = 500_000usize;
    let mut threads = Parallelism::Auto;
    let mut per_op = true;
    let mut verify = false;

    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after `{arg}`"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--fd" => fd_specs.push(take_value(&mut i)?),
            "--log" => log = Some(take_value(&mut i)?),
            "--per-op" => per_op = true,
            "--batch" => per_op = false,
            "--verify" => verify = true,
            "--weight" => {
                let v = take_value(&mut i)?;
                weight = match v.as_str() {
                    "distinct" => WeightKind::DistinctCount,
                    "count" => WeightKind::AttrCount,
                    "entropy" => WeightKind::Entropy,
                    other => return Err(format!("unknown --weight `{other}`")),
                };
            }
            "--seed" => {
                let v = take_value(&mut i)?;
                seed = v
                    .parse()
                    .map_err(|_| format!("invalid --seed value `{v}`"))?;
            }
            "--max-expansions" => {
                let v = take_value(&mut i)?;
                max_expansions = v
                    .parse()
                    .map_err(|_| format!("invalid --max-expansions value `{v}`"))?;
            }
            "--threads" => {
                let v = take_value(&mut i)?;
                threads = Parallelism::parse(&v).map_err(|e| format!("--threads: {e}"))?;
            }
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            other => {
                if input.is_some() {
                    return Err(format!("unexpected positional argument `{other}`"));
                }
                input = Some(other.to_string());
            }
        }
        i += 1;
    }

    Ok(ApplyOptions {
        input: input.ok_or_else(|| USAGE.to_string())?,
        fd_specs: if fd_specs.is_empty() {
            return Err("at least one --fd is required".to_string());
        } else {
            fd_specs
        },
        log: log.ok_or_else(|| "apply requires --log <mutations.json>".to_string())?,
        weight,
        seed,
        max_expansions,
        threads,
        per_op,
        verify,
    })
}

fn run_apply(options: &ApplyOptions) -> Result<(), EngineError> {
    let instance = relative_trust::relation::csv::read_instance_from_path("input", &options.input)
        .map_err(|e| file_error(&options.input, e))?;
    let schema = instance.schema().clone();
    let specs: Vec<&str> = options.fd_specs.iter().map(String::as_str).collect();
    let fds = FdSet::parse(&specs, &schema).map_err(EngineError::Fd)?;

    let log_text =
        std::fs::read_to_string(&options.log).map_err(|e| EngineError::io(&options.log, e))?;
    let ops = relative_trust::engine::parse_mutation_log(&log_text, &schema)
        .map_err(EngineError::Mutation)?;

    println!(
        "loaded {} tuples × {} attributes from {}; {} log entries from {}",
        instance.len(),
        schema.arity(),
        options.input,
        ops.len(),
        options.log
    );

    let mut engine = RepairEngine::builder(instance, fds)
        .weight(options.weight)
        .parallelism(options.threads)
        .max_expansions(options.max_expansions)
        .seed(options.seed)
        .build()?;

    if options.per_op {
        for (i, op) in ops.iter().enumerate() {
            let outcome = engine.apply(&MutationBatch::new().push(op.clone()))?;
            let e = outcome.effect;
            println!(
                "  op #{i:<3} rows +{}/-{}  cells ~{}  fds +{}/-{}  edges +{}/-{}  \
                 components {}  sweep cache {}",
                e.rows_inserted,
                e.rows_deleted,
                e.cells_updated,
                e.fds_added,
                e.fds_removed,
                e.edges_added,
                e.edges_removed,
                e.components_dirtied,
                if outcome.sweep_cache_retained {
                    "kept"
                } else {
                    "reset"
                }
            );
        }
    } else {
        let batch: MutationBatch = ops.iter().cloned().collect();
        let outcome = engine.apply(&batch)?;
        let e = outcome.effect;
        println!(
            "  batch of {}: rows +{}/-{}  cells ~{}  fds +{}/-{}  edges +{}/-{}  components {}",
            batch.len(),
            e.rows_inserted,
            e.rows_deleted,
            e.cells_updated,
            e.fds_added,
            e.fds_removed,
            e.edges_added,
            e.edges_removed,
            e.components_dirtied,
        );
    }

    let stats = engine.stats();
    println!(
        "\nlive session after replay: {} tuples, {} FDs, {} conflict edges",
        engine.problem().instance().len(),
        engine.problem().fd_count(),
        engine.problem().conflict_graph().edge_count()
    );
    println!(
        "  conflict graph builds : {} (rebuilds avoided: {})",
        stats.conflict_graph_builds, stats.graph_rebuild_avoided
    );
    println!(
        "  incremental edge delta: +{} / -{}  ({} components dirtied)",
        stats.edges_added, stats.edges_removed, stats.components_dirtied
    );

    let budget = engine.delta_p_original();
    println!("\npost-mutation spectrum (δP reference {budget}):");
    let spectrum = engine.spectrum()?;
    for point in &spectrum.points {
        println!(
            "  τ ∈ [{:>4}, {:>4}]  FD cost {:>10.1}  cell changes {:>5}   {}",
            point.tau_range.0,
            point.tau_range.1,
            point.repair.dist_c,
            point.repair.data_changes(),
            point.repair.modified_fds.display_with(&schema)
        );
    }

    if options.verify {
        let fresh = RepairEngine::builder(
            engine.problem().instance().clone(),
            engine.problem().sigma().clone(),
        )
        .weight(options.weight)
        .parallelism(options.threads)
        .max_expansions(options.max_expansions)
        .seed(options.seed)
        .build()?;
        let fresh_spectrum = fresh.spectrum()?;
        if spectrum.bit_identical(&fresh_spectrum) {
            println!(
                "\nverify: OK — incremental session is bit-identical to a fresh rebuild \
                 ({} spectrum points)",
                spectrum.len()
            );
        } else {
            return Err(EngineError::Mutation(
                "verification failed: incremental session diverged from a fresh rebuild".into(),
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("apply") {
        return match parse_apply_args(&args[1..]) {
            Ok(options) => match run_apply(&options) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    match parse_args(&args) {
        Ok(options) => match run(&options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_minimal_spectrum_invocation() {
        let o = parse_args(&args(&["data.csv", "--fd", "A->B"])).unwrap();
        assert_eq!(o.input, "data.csv");
        assert_eq!(o.fd_specs, vec!["A->B".to_string()]);
        assert_eq!(o.mode, Mode::Spectrum);
        assert_eq!(o.weight, WeightKind::DistinctCount);
        assert_eq!(o.seed, 0);
    }

    #[test]
    fn parses_full_single_repair_invocation() {
        let o = parse_args(&args(&[
            "d.csv",
            "--fd",
            "A->B",
            "--fd",
            "C,D->E",
            "--tau-r",
            "0.25",
            "--weight",
            "entropy",
            "--output",
            "out.csv",
            "--seed",
            "9",
            "--max-expansions",
            "1234",
        ]))
        .unwrap();
        assert_eq!(o.fd_specs.len(), 2);
        assert_eq!(o.mode, Mode::TauRelative(0.25));
        assert_eq!(o.weight, WeightKind::Entropy);
        assert_eq!(o.output.as_deref(), Some("out.csv"));
        assert_eq!(o.seed, 9);
        assert_eq!(o.max_expansions, 1234);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&["--fd", "A->B"])).is_err()); // no input file
        assert!(parse_args(&args(&["d.csv"])).is_err()); // no FDs
        assert!(parse_args(&args(&["d.csv", "--fd", "A->B", "--tau", "x"])).is_err());
        assert!(parse_args(&args(&["d.csv", "--fd", "A->B", "--tau-r", "1.5"])).is_err());
        assert!(parse_args(&args(&["d.csv", "--fd", "A->B", "--weight", "bogus"])).is_err());
        assert!(parse_args(&args(&["d.csv", "--fd", "A->B", "--bogus"])).is_err());
        assert!(parse_args(&args(&["d.csv", "extra.csv", "--fd", "A->B"])).is_err());
        assert!(parse_args(&args(&["--help"])).is_err());
    }

    #[test]
    fn tau_mode_parses_absolute_budget() {
        let o = parse_args(&args(&["d.csv", "--fd", "A->B", "--tau", "7"])).unwrap();
        assert_eq!(o.mode, Mode::Tau(7));
    }

    #[test]
    fn threads_flag_parses_all_spellings() {
        let o = parse_args(&args(&["d.csv", "--fd", "A->B"])).unwrap();
        assert_eq!(o.threads, Parallelism::Auto);
        let o = parse_args(&args(&["d.csv", "--fd", "A->B", "--threads", "serial"])).unwrap();
        assert_eq!(o.threads, Parallelism::Serial);
        let o = parse_args(&args(&["d.csv", "--fd", "A->B", "--threads", "4"])).unwrap();
        assert_eq!(o.threads, Parallelism::Fixed(4));
        assert!(parse_args(&args(&["d.csv", "--fd", "A->B", "--threads", "x"])).is_err());
    }

    #[test]
    fn missing_input_file_is_a_typed_error_not_a_panic() {
        let options = Options {
            input: "/nonexistent/definitely_missing.csv".to_string(),
            fd_specs: vec!["A->B".to_string()],
            mode: Mode::Tau(1),
            weight: WeightKind::AttrCount,
            output: None,
            seed: 0,
            max_expansions: 1000,
            threads: Parallelism::Serial,
        };
        let err = run(&options).unwrap_err();
        assert!(matches!(err, EngineError::Io { .. }), "got {err:?}");
        assert!(err.to_string().contains("definitely_missing.csv"));
    }

    #[test]
    fn malformed_csv_is_a_typed_error_not_a_panic() {
        let dir = std::env::temp_dir().join("rtclean_test_bad_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("ragged.csv");
        // Second data row has the wrong number of fields.
        std::fs::write(&input, "A,B\n1,1\n2\n").unwrap();
        let options = Options {
            input: input.to_string_lossy().to_string(),
            fd_specs: vec!["A->B".to_string()],
            mode: Mode::Tau(1),
            weight: WeightKind::AttrCount,
            output: None,
            seed: 0,
            max_expansions: 1000,
            threads: Parallelism::Serial,
        };
        let err = run(&options).unwrap_err();
        // A parse failure is not an access failure: it surfaces as the
        // structured Relation error, not Io.
        assert!(
            matches!(err, EngineError::Relation(RelationError::Csv(_))),
            "got {err:?}"
        );
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn unknown_fd_attribute_is_a_typed_error() {
        let dir = std::env::temp_dir().join("rtclean_test_bad_fd");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        std::fs::write(&input, "A,B\n1,1\n1,2\n").unwrap();
        let options = Options {
            input: input.to_string_lossy().to_string(),
            fd_specs: vec!["A->Nope".to_string()],
            mode: Mode::Spectrum,
            weight: WeightKind::AttrCount,
            output: None,
            seed: 0,
            max_expansions: 1000,
            threads: Parallelism::Serial,
        };
        let err = run(&options).unwrap_err();
        assert!(matches!(err, EngineError::Fd(_)), "got {err:?}");
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn apply_arg_parsing() {
        let o = parse_apply_args(&args(&[
            "d.csv", "--fd", "A->B", "--log", "m.json", "--verify", "--batch", "--weight", "count",
        ]))
        .unwrap();
        assert_eq!(o.input, "d.csv");
        assert_eq!(o.log, "m.json");
        assert!(o.verify);
        assert!(!o.per_op);
        assert_eq!(o.weight, WeightKind::AttrCount);
        // --log is mandatory, as is an input and at least one FD.
        assert!(parse_apply_args(&args(&["d.csv", "--fd", "A->B"])).is_err());
        assert!(parse_apply_args(&args(&["d.csv", "--log", "m.json"])).is_err());
        assert!(parse_apply_args(&args(&["--fd", "A->B", "--log", "m.json"])).is_err());
        assert!(parse_apply_args(&args(&["d.csv", "--fd", "A->B", "--log"])).is_err());
    }

    #[test]
    fn apply_replays_a_log_and_verifies() {
        let dir = std::env::temp_dir().join("rtclean_test_apply");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        let log = dir.join("mutations.json");
        std::fs::write(&input, "A,B,C\n1,1,1\n1,2,1\n2,5,3\n2,5,4\n").unwrap();
        std::fs::write(
            &log,
            r#"[
              {"op": "insert", "rows": [[1, 3, 9], [7, 7, 7]]},
              {"op": "update", "row": 0, "attr": "B", "value": 2},
              {"op": "delete", "rows": [3]},
              {"op": "add_fd", "fd": "C->B"},
              {"op": "remove_fd", "index": 0}
            ]"#,
        )
        .unwrap();
        for per_op in [true, false] {
            let options = ApplyOptions {
                input: input.to_string_lossy().to_string(),
                fd_specs: vec!["A->B".to_string()],
                log: log.to_string_lossy().to_string(),
                weight: WeightKind::AttrCount,
                seed: 3,
                max_expansions: 100_000,
                threads: Parallelism::Serial,
                per_op,
                verify: true,
            };
            run_apply(&options).unwrap();
        }
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&log).ok();
    }

    #[test]
    fn apply_rejects_invalid_logs_without_mutating() {
        let dir = std::env::temp_dir().join("rtclean_test_apply_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        let log = dir.join("bad.json");
        std::fs::write(&input, "A,B\n1,1\n1,2\n").unwrap();
        std::fs::write(&log, r#"[{"op": "delete", "rows": [99]}]"#).unwrap();
        let options = ApplyOptions {
            input: input.to_string_lossy().to_string(),
            fd_specs: vec!["A->B".to_string()],
            log: log.to_string_lossy().to_string(),
            weight: WeightKind::AttrCount,
            seed: 0,
            max_expansions: 10_000,
            threads: Parallelism::Serial,
            per_op: true,
            verify: false,
        };
        let err = run_apply(&options).unwrap_err();
        assert!(matches!(err, EngineError::Mutation(_)), "got {err:?}");
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&log).ok();
    }

    #[test]
    fn end_to_end_on_a_temporary_csv() {
        // Write a tiny violating instance, run the single-repair path.
        let dir = std::env::temp_dir().join("rtclean_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        let output = dir.join("out.csv");
        std::fs::write(&input, "A,B\n1,1\n1,2\n2,5\n").unwrap();
        let options = Options {
            input: input.to_string_lossy().to_string(),
            fd_specs: vec!["A->B".to_string()],
            mode: Mode::Tau(2),
            weight: WeightKind::AttrCount,
            output: Some(output.to_string_lossy().to_string()),
            seed: 1,
            max_expansions: 10_000,
            threads: Parallelism::Fixed(2),
        };
        run(&options).unwrap();
        let repaired =
            relative_trust::relation::csv::read_instance_from_path("out", &output).unwrap();
        assert_eq!(repaired.len(), 3);
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }
}
