(function() {
    const implementors = Object.fromEntries([["rt_constraints",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/collect/trait.IntoIterator.html\" title=\"trait core::iter::traits::collect::IntoIterator\">IntoIterator</a> for <a class=\"struct\" href=\"rt_constraints/attrset/struct.AttrSet.html\" title=\"struct rt_constraints::attrset::AttrSet\">AttrSet</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[354]}