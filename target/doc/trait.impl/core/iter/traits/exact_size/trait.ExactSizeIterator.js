(function() {
    const implementors = Object.fromEntries([["rt_constraints",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/exact_size/trait.ExactSizeIterator.html\" title=\"trait core::iter::traits::exact_size::ExactSizeIterator\">ExactSizeIterator</a> for <a class=\"struct\" href=\"rt_constraints/attrset/struct.AttrSetIter.html\" title=\"struct rt_constraints::attrset::AttrSetIter\">AttrSetIter</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[387]}