(function() {
    const implementors = Object.fromEntries([["rt_relation",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/index/trait.IndexMut.html\" title=\"trait core::ops::index::IndexMut\">IndexMut</a>&lt;<a class=\"struct\" href=\"rt_relation/schema/struct.AttrId.html\" title=\"struct rt_relation::schema::AttrId\">AttrId</a>&gt; for <a class=\"struct\" href=\"rt_relation/tuple/struct.Tuple.html\" title=\"struct rt_relation::tuple::Tuple\">Tuple</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[432]}