(function() {
    const implementors = Object.fromEntries([["rt_relation",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"rt_relation/error/enum.RelationError.html\" title=\"enum rt_relation::error::RelationError\">RelationError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[302]}