(function() {
    const implementors = Object.fromEntries([["exp_par_speedup",[["impl <a class=\"trait\" href=\"rt_bench/json/trait.ToJson.html\" title=\"trait rt_bench::json::ToJson\">ToJson</a> for <a class=\"struct\" href=\"exp_par_speedup/struct.SpeedupRow.html\" title=\"struct exp_par_speedup::SpeedupRow\">SpeedupRow</a>",0]]],["rt_bench",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[274,16]}