/root/repo/target/debug/deps/bench_fds-76241fc109261fbc.d: crates/bench/benches/bench_fds.rs Cargo.toml

/root/repo/target/debug/deps/libbench_fds-76241fc109261fbc.rmeta: crates/bench/benches/bench_fds.rs Cargo.toml

crates/bench/benches/bench_fds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
