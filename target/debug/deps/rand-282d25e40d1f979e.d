/root/repo/target/debug/deps/rand-282d25e40d1f979e.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-282d25e40d1f979e.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
