/root/repo/target/debug/deps/exp_scal_attrs-328176130f222d01.d: crates/bench/src/bin/exp_scal_attrs.rs Cargo.toml

/root/repo/target/debug/deps/libexp_scal_attrs-328176130f222d01.rmeta: crates/bench/src/bin/exp_scal_attrs.rs Cargo.toml

crates/bench/src/bin/exp_scal_attrs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
