/root/repo/target/debug/deps/criterion-618530475f400b91.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-618530475f400b91.rlib: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-618530475f400b91.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
