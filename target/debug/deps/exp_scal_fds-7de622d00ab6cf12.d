/root/repo/target/debug/deps/exp_scal_fds-7de622d00ab6cf12.d: crates/bench/src/bin/exp_scal_fds.rs

/root/repo/target/debug/deps/exp_scal_fds-7de622d00ab6cf12: crates/bench/src/bin/exp_scal_fds.rs

crates/bench/src/bin/exp_scal_fds.rs:
