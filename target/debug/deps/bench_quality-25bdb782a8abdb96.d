/root/repo/target/debug/deps/bench_quality-25bdb782a8abdb96.d: crates/bench/benches/bench_quality.rs Cargo.toml

/root/repo/target/debug/deps/libbench_quality-25bdb782a8abdb96.rmeta: crates/bench/benches/bench_quality.rs Cargo.toml

crates/bench/benches/bench_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
