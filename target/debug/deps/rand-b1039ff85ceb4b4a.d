/root/repo/target/debug/deps/rand-b1039ff85ceb4b4a.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-b1039ff85ceb4b4a: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
