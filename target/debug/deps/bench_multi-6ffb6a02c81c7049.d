/root/repo/target/debug/deps/bench_multi-6ffb6a02c81c7049.d: crates/bench/benches/bench_multi.rs Cargo.toml

/root/repo/target/debug/deps/libbench_multi-6ffb6a02c81c7049.rmeta: crates/bench/benches/bench_multi.rs Cargo.toml

crates/bench/benches/bench_multi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
