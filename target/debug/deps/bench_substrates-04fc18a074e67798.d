/root/repo/target/debug/deps/bench_substrates-04fc18a074e67798.d: crates/bench/benches/bench_substrates.rs

/root/repo/target/debug/deps/bench_substrates-04fc18a074e67798: crates/bench/benches/bench_substrates.rs

crates/bench/benches/bench_substrates.rs:
