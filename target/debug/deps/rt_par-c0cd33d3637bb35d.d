/root/repo/target/debug/deps/rt_par-c0cd33d3637bb35d.d: crates/par/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librt_par-c0cd33d3637bb35d.rmeta: crates/par/src/lib.rs Cargo.toml

crates/par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
