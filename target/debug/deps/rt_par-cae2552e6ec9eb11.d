/root/repo/target/debug/deps/rt_par-cae2552e6ec9eb11.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/librt_par-cae2552e6ec9eb11.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
