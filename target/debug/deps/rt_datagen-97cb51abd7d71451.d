/root/repo/target/debug/deps/rt_datagen-97cb51abd7d71451.d: crates/datagen/src/lib.rs crates/datagen/src/generator.rs crates/datagen/src/metrics.rs crates/datagen/src/perturb.rs Cargo.toml

/root/repo/target/debug/deps/librt_datagen-97cb51abd7d71451.rmeta: crates/datagen/src/lib.rs crates/datagen/src/generator.rs crates/datagen/src/metrics.rs crates/datagen/src/perturb.rs Cargo.toml

crates/datagen/src/lib.rs:
crates/datagen/src/generator.rs:
crates/datagen/src/metrics.rs:
crates/datagen/src/perturb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
