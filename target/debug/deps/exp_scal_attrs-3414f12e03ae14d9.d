/root/repo/target/debug/deps/exp_scal_attrs-3414f12e03ae14d9.d: crates/bench/src/bin/exp_scal_attrs.rs

/root/repo/target/debug/deps/exp_scal_attrs-3414f12e03ae14d9: crates/bench/src/bin/exp_scal_attrs.rs

crates/bench/src/bin/exp_scal_attrs.rs:
