/root/repo/target/debug/deps/exp_scal_attrs-d2ebedf387a06d68.d: crates/bench/src/bin/exp_scal_attrs.rs

/root/repo/target/debug/deps/exp_scal_attrs-d2ebedf387a06d68: crates/bench/src/bin/exp_scal_attrs.rs

crates/bench/src/bin/exp_scal_attrs.rs:
