/root/repo/target/debug/deps/rt_baseline-ec50d91633517251.d: crates/baseline/src/lib.rs crates/baseline/src/unified.rs Cargo.toml

/root/repo/target/debug/deps/librt_baseline-ec50d91633517251.rmeta: crates/baseline/src/lib.rs crates/baseline/src/unified.rs Cargo.toml

crates/baseline/src/lib.rs:
crates/baseline/src/unified.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
