/root/repo/target/debug/deps/exp_par_speedup-97c826c09d1905ad.d: crates/bench/src/bin/exp_par_speedup.rs

/root/repo/target/debug/deps/exp_par_speedup-97c826c09d1905ad: crates/bench/src/bin/exp_par_speedup.rs

crates/bench/src/bin/exp_par_speedup.rs:
