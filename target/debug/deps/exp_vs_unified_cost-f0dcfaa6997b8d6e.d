/root/repo/target/debug/deps/exp_vs_unified_cost-f0dcfaa6997b8d6e.d: crates/bench/src/bin/exp_vs_unified_cost.rs

/root/repo/target/debug/deps/exp_vs_unified_cost-f0dcfaa6997b8d6e: crates/bench/src/bin/exp_vs_unified_cost.rs

crates/bench/src/bin/exp_vs_unified_cost.rs:
