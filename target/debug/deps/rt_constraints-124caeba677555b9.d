/root/repo/target/debug/deps/rt_constraints-124caeba677555b9.d: crates/constraints/src/lib.rs crates/constraints/src/attrset.rs crates/constraints/src/discovery.rs crates/constraints/src/fd.rs crates/constraints/src/partition.rs crates/constraints/src/violations.rs crates/constraints/src/weights.rs

/root/repo/target/debug/deps/librt_constraints-124caeba677555b9.rmeta: crates/constraints/src/lib.rs crates/constraints/src/attrset.rs crates/constraints/src/discovery.rs crates/constraints/src/fd.rs crates/constraints/src/partition.rs crates/constraints/src/violations.rs crates/constraints/src/weights.rs

crates/constraints/src/lib.rs:
crates/constraints/src/attrset.rs:
crates/constraints/src/discovery.rs:
crates/constraints/src/fd.rs:
crates/constraints/src/partition.rs:
crates/constraints/src/violations.rs:
crates/constraints/src/weights.rs:
