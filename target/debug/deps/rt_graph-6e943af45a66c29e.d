/root/repo/target/debug/deps/rt_graph-6e943af45a66c29e.d: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/vertex_cover.rs

/root/repo/target/debug/deps/rt_graph-6e943af45a66c29e: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/vertex_cover.rs

crates/graph/src/lib.rs:
crates/graph/src/graph.rs:
crates/graph/src/vertex_cover.rs:
