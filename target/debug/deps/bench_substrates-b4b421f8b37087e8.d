/root/repo/target/debug/deps/bench_substrates-b4b421f8b37087e8.d: crates/bench/benches/bench_substrates.rs Cargo.toml

/root/repo/target/debug/deps/libbench_substrates-b4b421f8b37087e8.rmeta: crates/bench/benches/bench_substrates.rs Cargo.toml

crates/bench/benches/bench_substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
