/root/repo/target/debug/deps/rtclean-dad8f65753dbc769.d: src/bin/rtclean.rs Cargo.toml

/root/repo/target/debug/deps/librtclean-dad8f65753dbc769.rmeta: src/bin/rtclean.rs Cargo.toml

src/bin/rtclean.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
