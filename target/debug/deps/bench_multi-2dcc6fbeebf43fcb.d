/root/repo/target/debug/deps/bench_multi-2dcc6fbeebf43fcb.d: crates/bench/benches/bench_multi.rs

/root/repo/target/debug/deps/bench_multi-2dcc6fbeebf43fcb: crates/bench/benches/bench_multi.rs

crates/bench/benches/bench_multi.rs:
