/root/repo/target/debug/deps/rt_datagen-be1005759a7d4307.d: crates/datagen/src/lib.rs crates/datagen/src/generator.rs crates/datagen/src/metrics.rs crates/datagen/src/perturb.rs

/root/repo/target/debug/deps/librt_datagen-be1005759a7d4307.rmeta: crates/datagen/src/lib.rs crates/datagen/src/generator.rs crates/datagen/src/metrics.rs crates/datagen/src/perturb.rs

crates/datagen/src/lib.rs:
crates/datagen/src/generator.rs:
crates/datagen/src/metrics.rs:
crates/datagen/src/perturb.rs:
