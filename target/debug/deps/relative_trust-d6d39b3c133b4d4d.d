/root/repo/target/debug/deps/relative_trust-d6d39b3c133b4d4d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librelative_trust-d6d39b3c133b4d4d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
