/root/repo/target/debug/deps/rt_relation-f3ffced5874a7cbd.d: crates/relation/src/lib.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/instance.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs Cargo.toml

/root/repo/target/debug/deps/librt_relation-f3ffced5874a7cbd.rmeta: crates/relation/src/lib.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/instance.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs Cargo.toml

crates/relation/src/lib.rs:
crates/relation/src/csv.rs:
crates/relation/src/error.rs:
crates/relation/src/instance.rs:
crates/relation/src/schema.rs:
crates/relation/src/tuple.rs:
crates/relation/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
