/root/repo/target/debug/deps/rand-56cb5db677e60938.d: shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-56cb5db677e60938.rmeta: shims/rand/src/lib.rs Cargo.toml

shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
