/root/repo/target/debug/deps/exp_multi_repairs-fa4b0895c7e721b2.d: crates/bench/src/bin/exp_multi_repairs.rs

/root/repo/target/debug/deps/exp_multi_repairs-fa4b0895c7e721b2: crates/bench/src/bin/exp_multi_repairs.rs

crates/bench/src/bin/exp_multi_repairs.rs:
