/root/repo/target/debug/deps/rt_graph-5961e529a35c4415.d: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/vertex_cover.rs

/root/repo/target/debug/deps/librt_graph-5961e529a35c4415.rmeta: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/vertex_cover.rs

crates/graph/src/lib.rs:
crates/graph/src/graph.rs:
crates/graph/src/vertex_cover.rs:
