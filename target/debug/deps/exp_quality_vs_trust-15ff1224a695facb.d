/root/repo/target/debug/deps/exp_quality_vs_trust-15ff1224a695facb.d: crates/bench/src/bin/exp_quality_vs_trust.rs

/root/repo/target/debug/deps/exp_quality_vs_trust-15ff1224a695facb: crates/bench/src/bin/exp_quality_vs_trust.rs

crates/bench/src/bin/exp_quality_vs_trust.rs:
