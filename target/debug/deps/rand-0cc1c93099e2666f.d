/root/repo/target/debug/deps/rand-0cc1c93099e2666f.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-0cc1c93099e2666f.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
