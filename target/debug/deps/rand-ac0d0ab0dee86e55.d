/root/repo/target/debug/deps/rand-ac0d0ab0dee86e55.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ac0d0ab0dee86e55.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ac0d0ab0dee86e55.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
