/root/repo/target/debug/deps/exp_multi_repairs-c62312e0bbe86e48.d: crates/bench/src/bin/exp_multi_repairs.rs

/root/repo/target/debug/deps/exp_multi_repairs-c62312e0bbe86e48: crates/bench/src/bin/exp_multi_repairs.rs

crates/bench/src/bin/exp_multi_repairs.rs:
