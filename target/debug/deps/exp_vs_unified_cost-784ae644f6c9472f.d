/root/repo/target/debug/deps/exp_vs_unified_cost-784ae644f6c9472f.d: crates/bench/src/bin/exp_vs_unified_cost.rs

/root/repo/target/debug/deps/exp_vs_unified_cost-784ae644f6c9472f: crates/bench/src/bin/exp_vs_unified_cost.rs

crates/bench/src/bin/exp_vs_unified_cost.rs:
