/root/repo/target/debug/deps/rt_par-423daa11e10bcafa.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/rt_par-423daa11e10bcafa: crates/par/src/lib.rs

crates/par/src/lib.rs:
