/root/repo/target/debug/deps/relative_trust-d617e9e8459d9ab3.d: src/lib.rs

/root/repo/target/debug/deps/librelative_trust-d617e9e8459d9ab3.rlib: src/lib.rs

/root/repo/target/debug/deps/librelative_trust-d617e9e8459d9ab3.rmeta: src/lib.rs

src/lib.rs:
