/root/repo/target/debug/deps/rt_constraints-7ed019d61bdbd0d9.d: crates/constraints/src/lib.rs crates/constraints/src/attrset.rs crates/constraints/src/discovery.rs crates/constraints/src/fd.rs crates/constraints/src/partition.rs crates/constraints/src/violations.rs crates/constraints/src/weights.rs

/root/repo/target/debug/deps/librt_constraints-7ed019d61bdbd0d9.rlib: crates/constraints/src/lib.rs crates/constraints/src/attrset.rs crates/constraints/src/discovery.rs crates/constraints/src/fd.rs crates/constraints/src/partition.rs crates/constraints/src/violations.rs crates/constraints/src/weights.rs

/root/repo/target/debug/deps/librt_constraints-7ed019d61bdbd0d9.rmeta: crates/constraints/src/lib.rs crates/constraints/src/attrset.rs crates/constraints/src/discovery.rs crates/constraints/src/fd.rs crates/constraints/src/partition.rs crates/constraints/src/violations.rs crates/constraints/src/weights.rs

crates/constraints/src/lib.rs:
crates/constraints/src/attrset.rs:
crates/constraints/src/discovery.rs:
crates/constraints/src/fd.rs:
crates/constraints/src/partition.rs:
crates/constraints/src/violations.rs:
crates/constraints/src/weights.rs:
