/root/repo/target/debug/deps/rtclean-dfa43727fe82f5b4.d: src/bin/rtclean.rs Cargo.toml

/root/repo/target/debug/deps/librtclean-dfa43727fe82f5b4.rmeta: src/bin/rtclean.rs Cargo.toml

src/bin/rtclean.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
