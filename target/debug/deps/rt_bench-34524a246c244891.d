/root/repo/target/debug/deps/rt_bench-34524a246c244891.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/librt_bench-34524a246c244891.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/librt_bench-34524a246c244891.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/json.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
