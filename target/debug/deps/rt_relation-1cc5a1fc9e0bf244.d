/root/repo/target/debug/deps/rt_relation-1cc5a1fc9e0bf244.d: crates/relation/src/lib.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/instance.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

/root/repo/target/debug/deps/rt_relation-1cc5a1fc9e0bf244: crates/relation/src/lib.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/instance.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

crates/relation/src/lib.rs:
crates/relation/src/csv.rs:
crates/relation/src/error.rs:
crates/relation/src/instance.rs:
crates/relation/src/schema.rs:
crates/relation/src/tuple.rs:
crates/relation/src/value.rs:
