/root/repo/target/debug/deps/bench_tau-51338546601fd5b6.d: crates/bench/benches/bench_tau.rs

/root/repo/target/debug/deps/bench_tau-51338546601fd5b6: crates/bench/benches/bench_tau.rs

crates/bench/benches/bench_tau.rs:
