/root/repo/target/debug/deps/exp_quality_vs_trust-f8590c71dc900721.d: crates/bench/src/bin/exp_quality_vs_trust.rs

/root/repo/target/debug/deps/exp_quality_vs_trust-f8590c71dc900721: crates/bench/src/bin/exp_quality_vs_trust.rs

crates/bench/src/bin/exp_quality_vs_trust.rs:
