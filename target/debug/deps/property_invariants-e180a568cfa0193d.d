/root/repo/target/debug/deps/property_invariants-e180a568cfa0193d.d: tests/property_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_invariants-e180a568cfa0193d.rmeta: tests/property_invariants.rs Cargo.toml

tests/property_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
