/root/repo/target/debug/deps/exp_par_speedup-22b9e1dd3d32ed25.d: crates/bench/src/bin/exp_par_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libexp_par_speedup-22b9e1dd3d32ed25.rmeta: crates/bench/src/bin/exp_par_speedup.rs Cargo.toml

crates/bench/src/bin/exp_par_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
