/root/repo/target/debug/deps/rt_baseline-ff050bd202e15007.d: crates/baseline/src/lib.rs crates/baseline/src/unified.rs

/root/repo/target/debug/deps/librt_baseline-ff050bd202e15007.rmeta: crates/baseline/src/lib.rs crates/baseline/src/unified.rs

crates/baseline/src/lib.rs:
crates/baseline/src/unified.rs:
