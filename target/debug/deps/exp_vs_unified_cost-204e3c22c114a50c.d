/root/repo/target/debug/deps/exp_vs_unified_cost-204e3c22c114a50c.d: crates/bench/src/bin/exp_vs_unified_cost.rs Cargo.toml

/root/repo/target/debug/deps/libexp_vs_unified_cost-204e3c22c114a50c.rmeta: crates/bench/src/bin/exp_vs_unified_cost.rs Cargo.toml

crates/bench/src/bin/exp_vs_unified_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
