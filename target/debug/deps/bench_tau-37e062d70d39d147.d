/root/repo/target/debug/deps/bench_tau-37e062d70d39d147.d: crates/bench/benches/bench_tau.rs Cargo.toml

/root/repo/target/debug/deps/libbench_tau-37e062d70d39d147.rmeta: crates/bench/benches/bench_tau.rs Cargo.toml

crates/bench/benches/bench_tau.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
