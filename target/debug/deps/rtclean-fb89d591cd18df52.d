/root/repo/target/debug/deps/rtclean-fb89d591cd18df52.d: src/bin/rtclean.rs

/root/repo/target/debug/deps/rtclean-fb89d591cd18df52: src/bin/rtclean.rs

src/bin/rtclean.rs:
