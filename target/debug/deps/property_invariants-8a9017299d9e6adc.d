/root/repo/target/debug/deps/property_invariants-8a9017299d9e6adc.d: tests/property_invariants.rs

/root/repo/target/debug/deps/property_invariants-8a9017299d9e6adc: tests/property_invariants.rs

tests/property_invariants.rs:
