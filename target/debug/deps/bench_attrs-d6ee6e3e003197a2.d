/root/repo/target/debug/deps/bench_attrs-d6ee6e3e003197a2.d: crates/bench/benches/bench_attrs.rs

/root/repo/target/debug/deps/bench_attrs-d6ee6e3e003197a2: crates/bench/benches/bench_attrs.rs

crates/bench/benches/bench_attrs.rs:
