/root/repo/target/debug/deps/rt_core-0db144a3bbe5da2e.d: crates/core/src/lib.rs crates/core/src/data_repair.rs crates/core/src/heuristic.rs crates/core/src/multi.rs crates/core/src/problem.rs crates/core/src/repair.rs crates/core/src/search.rs crates/core/src/state.rs

/root/repo/target/debug/deps/librt_core-0db144a3bbe5da2e.rlib: crates/core/src/lib.rs crates/core/src/data_repair.rs crates/core/src/heuristic.rs crates/core/src/multi.rs crates/core/src/problem.rs crates/core/src/repair.rs crates/core/src/search.rs crates/core/src/state.rs

/root/repo/target/debug/deps/librt_core-0db144a3bbe5da2e.rmeta: crates/core/src/lib.rs crates/core/src/data_repair.rs crates/core/src/heuristic.rs crates/core/src/multi.rs crates/core/src/problem.rs crates/core/src/repair.rs crates/core/src/search.rs crates/core/src/state.rs

crates/core/src/lib.rs:
crates/core/src/data_repair.rs:
crates/core/src/heuristic.rs:
crates/core/src/multi.rs:
crates/core/src/problem.rs:
crates/core/src/repair.rs:
crates/core/src/search.rs:
crates/core/src/state.rs:
