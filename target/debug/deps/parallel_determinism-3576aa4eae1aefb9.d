/root/repo/target/debug/deps/parallel_determinism-3576aa4eae1aefb9.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-3576aa4eae1aefb9: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
