/root/repo/target/debug/deps/exp_quality_vs_trust-fe11c701a72d3e09.d: crates/bench/src/bin/exp_quality_vs_trust.rs Cargo.toml

/root/repo/target/debug/deps/libexp_quality_vs_trust-fe11c701a72d3e09.rmeta: crates/bench/src/bin/exp_quality_vs_trust.rs Cargo.toml

crates/bench/src/bin/exp_quality_vs_trust.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
