/root/repo/target/debug/deps/exp_scal_tuples-14ea717932aede25.d: crates/bench/src/bin/exp_scal_tuples.rs Cargo.toml

/root/repo/target/debug/deps/libexp_scal_tuples-14ea717932aede25.rmeta: crates/bench/src/bin/exp_scal_tuples.rs Cargo.toml

crates/bench/src/bin/exp_scal_tuples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
