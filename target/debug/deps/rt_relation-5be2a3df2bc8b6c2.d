/root/repo/target/debug/deps/rt_relation-5be2a3df2bc8b6c2.d: crates/relation/src/lib.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/instance.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

/root/repo/target/debug/deps/librt_relation-5be2a3df2bc8b6c2.rlib: crates/relation/src/lib.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/instance.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

/root/repo/target/debug/deps/librt_relation-5be2a3df2bc8b6c2.rmeta: crates/relation/src/lib.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/instance.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

crates/relation/src/lib.rs:
crates/relation/src/csv.rs:
crates/relation/src/error.rs:
crates/relation/src/instance.rs:
crates/relation/src/schema.rs:
crates/relation/src/tuple.rs:
crates/relation/src/value.rs:
