/root/repo/target/debug/deps/exp_scal_tuples-deaad42b2beccbb0.d: crates/bench/src/bin/exp_scal_tuples.rs

/root/repo/target/debug/deps/exp_scal_tuples-deaad42b2beccbb0: crates/bench/src/bin/exp_scal_tuples.rs

crates/bench/src/bin/exp_scal_tuples.rs:
