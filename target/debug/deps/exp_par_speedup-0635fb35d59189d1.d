/root/repo/target/debug/deps/exp_par_speedup-0635fb35d59189d1.d: crates/bench/src/bin/exp_par_speedup.rs

/root/repo/target/debug/deps/exp_par_speedup-0635fb35d59189d1: crates/bench/src/bin/exp_par_speedup.rs

crates/bench/src/bin/exp_par_speedup.rs:
