/root/repo/target/debug/deps/property_invariants-96cfd6a3fedb62d0.d: tests/property_invariants.rs

/root/repo/target/debug/deps/property_invariants-96cfd6a3fedb62d0: tests/property_invariants.rs

tests/property_invariants.rs:
