/root/repo/target/debug/deps/exp_scal_fds-f295a5a195fe8c3b.d: crates/bench/src/bin/exp_scal_fds.rs Cargo.toml

/root/repo/target/debug/deps/libexp_scal_fds-f295a5a195fe8c3b.rmeta: crates/bench/src/bin/exp_scal_fds.rs Cargo.toml

crates/bench/src/bin/exp_scal_fds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
