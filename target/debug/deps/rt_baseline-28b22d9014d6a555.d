/root/repo/target/debug/deps/rt_baseline-28b22d9014d6a555.d: crates/baseline/src/lib.rs crates/baseline/src/unified.rs

/root/repo/target/debug/deps/librt_baseline-28b22d9014d6a555.rlib: crates/baseline/src/lib.rs crates/baseline/src/unified.rs

/root/repo/target/debug/deps/librt_baseline-28b22d9014d6a555.rmeta: crates/baseline/src/lib.rs crates/baseline/src/unified.rs

crates/baseline/src/lib.rs:
crates/baseline/src/unified.rs:
