/root/repo/target/debug/deps/rtclean-8936dd6a15dbaabb.d: src/bin/rtclean.rs

/root/repo/target/debug/deps/rtclean-8936dd6a15dbaabb: src/bin/rtclean.rs

src/bin/rtclean.rs:
