/root/repo/target/debug/deps/rt_graph-aeae8f825519fc17.d: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/vertex_cover.rs

/root/repo/target/debug/deps/librt_graph-aeae8f825519fc17.rlib: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/vertex_cover.rs

/root/repo/target/debug/deps/librt_graph-aeae8f825519fc17.rmeta: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/vertex_cover.rs

crates/graph/src/lib.rs:
crates/graph/src/graph.rs:
crates/graph/src/vertex_cover.rs:
