/root/repo/target/debug/deps/rt_baseline-919614a1759c0fe2.d: crates/baseline/src/lib.rs crates/baseline/src/unified.rs Cargo.toml

/root/repo/target/debug/deps/librt_baseline-919614a1759c0fe2.rmeta: crates/baseline/src/lib.rs crates/baseline/src/unified.rs Cargo.toml

crates/baseline/src/lib.rs:
crates/baseline/src/unified.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
