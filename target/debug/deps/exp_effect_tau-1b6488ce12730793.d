/root/repo/target/debug/deps/exp_effect_tau-1b6488ce12730793.d: crates/bench/src/bin/exp_effect_tau.rs

/root/repo/target/debug/deps/exp_effect_tau-1b6488ce12730793: crates/bench/src/bin/exp_effect_tau.rs

crates/bench/src/bin/exp_effect_tau.rs:
