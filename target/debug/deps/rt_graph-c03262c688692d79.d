/root/repo/target/debug/deps/rt_graph-c03262c688692d79.d: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/vertex_cover.rs Cargo.toml

/root/repo/target/debug/deps/librt_graph-c03262c688692d79.rmeta: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/vertex_cover.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/graph.rs:
crates/graph/src/vertex_cover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
