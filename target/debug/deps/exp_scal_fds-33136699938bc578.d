/root/repo/target/debug/deps/exp_scal_fds-33136699938bc578.d: crates/bench/src/bin/exp_scal_fds.rs

/root/repo/target/debug/deps/exp_scal_fds-33136699938bc578: crates/bench/src/bin/exp_scal_fds.rs

crates/bench/src/bin/exp_scal_fds.rs:
