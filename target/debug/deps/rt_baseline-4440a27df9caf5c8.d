/root/repo/target/debug/deps/rt_baseline-4440a27df9caf5c8.d: crates/baseline/src/lib.rs crates/baseline/src/unified.rs

/root/repo/target/debug/deps/rt_baseline-4440a27df9caf5c8: crates/baseline/src/lib.rs crates/baseline/src/unified.rs

crates/baseline/src/lib.rs:
crates/baseline/src/unified.rs:
