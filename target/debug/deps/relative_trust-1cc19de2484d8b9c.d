/root/repo/target/debug/deps/relative_trust-1cc19de2484d8b9c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librelative_trust-1cc19de2484d8b9c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
