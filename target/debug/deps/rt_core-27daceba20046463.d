/root/repo/target/debug/deps/rt_core-27daceba20046463.d: crates/core/src/lib.rs crates/core/src/data_repair.rs crates/core/src/heuristic.rs crates/core/src/multi.rs crates/core/src/problem.rs crates/core/src/repair.rs crates/core/src/search.rs crates/core/src/state.rs

/root/repo/target/debug/deps/rt_core-27daceba20046463: crates/core/src/lib.rs crates/core/src/data_repair.rs crates/core/src/heuristic.rs crates/core/src/multi.rs crates/core/src/problem.rs crates/core/src/repair.rs crates/core/src/search.rs crates/core/src/state.rs

crates/core/src/lib.rs:
crates/core/src/data_repair.rs:
crates/core/src/heuristic.rs:
crates/core/src/multi.rs:
crates/core/src/problem.rs:
crates/core/src/repair.rs:
crates/core/src/search.rs:
crates/core/src/state.rs:
