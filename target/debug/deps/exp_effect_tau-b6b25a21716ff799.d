/root/repo/target/debug/deps/exp_effect_tau-b6b25a21716ff799.d: crates/bench/src/bin/exp_effect_tau.rs Cargo.toml

/root/repo/target/debug/deps/libexp_effect_tau-b6b25a21716ff799.rmeta: crates/bench/src/bin/exp_effect_tau.rs Cargo.toml

crates/bench/src/bin/exp_effect_tau.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
