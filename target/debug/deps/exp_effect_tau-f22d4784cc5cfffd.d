/root/repo/target/debug/deps/exp_effect_tau-f22d4784cc5cfffd.d: crates/bench/src/bin/exp_effect_tau.rs

/root/repo/target/debug/deps/exp_effect_tau-f22d4784cc5cfffd: crates/bench/src/bin/exp_effect_tau.rs

crates/bench/src/bin/exp_effect_tau.rs:
