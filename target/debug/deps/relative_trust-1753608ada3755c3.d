/root/repo/target/debug/deps/relative_trust-1753608ada3755c3.d: src/lib.rs

/root/repo/target/debug/deps/relative_trust-1753608ada3755c3: src/lib.rs

src/lib.rs:
