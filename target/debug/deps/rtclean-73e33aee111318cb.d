/root/repo/target/debug/deps/rtclean-73e33aee111318cb.d: src/bin/rtclean.rs

/root/repo/target/debug/deps/rtclean-73e33aee111318cb: src/bin/rtclean.rs

src/bin/rtclean.rs:
