/root/repo/target/debug/deps/rt_bench-7e25e38ac84479bc.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/rt_bench-7e25e38ac84479bc: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/json.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
