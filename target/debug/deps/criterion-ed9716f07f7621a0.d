/root/repo/target/debug/deps/criterion-ed9716f07f7621a0.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-ed9716f07f7621a0: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
