/root/repo/target/debug/deps/rt_core-3a5f81e4317255b6.d: crates/core/src/lib.rs crates/core/src/data_repair.rs crates/core/src/heuristic.rs crates/core/src/multi.rs crates/core/src/problem.rs crates/core/src/repair.rs crates/core/src/search.rs crates/core/src/state.rs Cargo.toml

/root/repo/target/debug/deps/librt_core-3a5f81e4317255b6.rmeta: crates/core/src/lib.rs crates/core/src/data_repair.rs crates/core/src/heuristic.rs crates/core/src/multi.rs crates/core/src/problem.rs crates/core/src/repair.rs crates/core/src/search.rs crates/core/src/state.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/data_repair.rs:
crates/core/src/heuristic.rs:
crates/core/src/multi.rs:
crates/core/src/problem.rs:
crates/core/src/repair.rs:
crates/core/src/search.rs:
crates/core/src/state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
