/root/repo/target/debug/deps/exp_scal_tuples-2c95ed467b8c86f6.d: crates/bench/src/bin/exp_scal_tuples.rs

/root/repo/target/debug/deps/exp_scal_tuples-2c95ed467b8c86f6: crates/bench/src/bin/exp_scal_tuples.rs

crates/bench/src/bin/exp_scal_tuples.rs:
