/root/repo/target/debug/deps/rt_par-fec03b44640e59fa.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/librt_par-fec03b44640e59fa.rlib: crates/par/src/lib.rs

/root/repo/target/debug/deps/librt_par-fec03b44640e59fa.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
