/root/repo/target/debug/deps/relative_trust-9663c05872f904fa.d: src/lib.rs

/root/repo/target/debug/deps/librelative_trust-9663c05872f904fa.rmeta: src/lib.rs

src/lib.rs:
