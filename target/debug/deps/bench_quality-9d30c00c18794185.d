/root/repo/target/debug/deps/bench_quality-9d30c00c18794185.d: crates/bench/benches/bench_quality.rs

/root/repo/target/debug/deps/bench_quality-9d30c00c18794185: crates/bench/benches/bench_quality.rs

crates/bench/benches/bench_quality.rs:
