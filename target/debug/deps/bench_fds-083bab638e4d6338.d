/root/repo/target/debug/deps/bench_fds-083bab638e4d6338.d: crates/bench/benches/bench_fds.rs

/root/repo/target/debug/deps/bench_fds-083bab638e4d6338: crates/bench/benches/bench_fds.rs

crates/bench/benches/bench_fds.rs:
