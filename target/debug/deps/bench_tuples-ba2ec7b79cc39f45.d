/root/repo/target/debug/deps/bench_tuples-ba2ec7b79cc39f45.d: crates/bench/benches/bench_tuples.rs Cargo.toml

/root/repo/target/debug/deps/libbench_tuples-ba2ec7b79cc39f45.rmeta: crates/bench/benches/bench_tuples.rs Cargo.toml

crates/bench/benches/bench_tuples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
