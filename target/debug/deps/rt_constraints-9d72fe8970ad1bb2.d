/root/repo/target/debug/deps/rt_constraints-9d72fe8970ad1bb2.d: crates/constraints/src/lib.rs crates/constraints/src/attrset.rs crates/constraints/src/discovery.rs crates/constraints/src/fd.rs crates/constraints/src/partition.rs crates/constraints/src/violations.rs crates/constraints/src/weights.rs Cargo.toml

/root/repo/target/debug/deps/librt_constraints-9d72fe8970ad1bb2.rmeta: crates/constraints/src/lib.rs crates/constraints/src/attrset.rs crates/constraints/src/discovery.rs crates/constraints/src/fd.rs crates/constraints/src/partition.rs crates/constraints/src/violations.rs crates/constraints/src/weights.rs Cargo.toml

crates/constraints/src/lib.rs:
crates/constraints/src/attrset.rs:
crates/constraints/src/discovery.rs:
crates/constraints/src/fd.rs:
crates/constraints/src/partition.rs:
crates/constraints/src/violations.rs:
crates/constraints/src/weights.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
