/root/repo/target/debug/deps/rt_datagen-8ba9be7984d1754a.d: crates/datagen/src/lib.rs crates/datagen/src/generator.rs crates/datagen/src/metrics.rs crates/datagen/src/perturb.rs

/root/repo/target/debug/deps/rt_datagen-8ba9be7984d1754a: crates/datagen/src/lib.rs crates/datagen/src/generator.rs crates/datagen/src/metrics.rs crates/datagen/src/perturb.rs

crates/datagen/src/lib.rs:
crates/datagen/src/generator.rs:
crates/datagen/src/metrics.rs:
crates/datagen/src/perturb.rs:
