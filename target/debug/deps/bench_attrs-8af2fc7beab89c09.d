/root/repo/target/debug/deps/bench_attrs-8af2fc7beab89c09.d: crates/bench/benches/bench_attrs.rs Cargo.toml

/root/repo/target/debug/deps/libbench_attrs-8af2fc7beab89c09.rmeta: crates/bench/benches/bench_attrs.rs Cargo.toml

crates/bench/benches/bench_attrs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
