/root/repo/target/debug/deps/rt_relation-ae5e62aa816c28e3.d: crates/relation/src/lib.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/instance.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

/root/repo/target/debug/deps/librt_relation-ae5e62aa816c28e3.rmeta: crates/relation/src/lib.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/instance.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

crates/relation/src/lib.rs:
crates/relation/src/csv.rs:
crates/relation/src/error.rs:
crates/relation/src/instance.rs:
crates/relation/src/schema.rs:
crates/relation/src/tuple.rs:
crates/relation/src/value.rs:
