/root/repo/target/debug/deps/rt_bench-98cde0286a76451b.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/report.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/librt_bench-98cde0286a76451b.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/report.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/json.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
