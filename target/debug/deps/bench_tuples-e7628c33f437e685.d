/root/repo/target/debug/deps/bench_tuples-e7628c33f437e685.d: crates/bench/benches/bench_tuples.rs

/root/repo/target/debug/deps/bench_tuples-e7628c33f437e685: crates/bench/benches/bench_tuples.rs

crates/bench/benches/bench_tuples.rs:
