/root/repo/target/debug/deps/rt_par-856bb447198d8459.d: crates/par/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librt_par-856bb447198d8459.rmeta: crates/par/src/lib.rs Cargo.toml

crates/par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
