/root/repo/target/debug/deps/rt_datagen-81add1111df0a6ff.d: crates/datagen/src/lib.rs crates/datagen/src/generator.rs crates/datagen/src/metrics.rs crates/datagen/src/perturb.rs

/root/repo/target/debug/deps/librt_datagen-81add1111df0a6ff.rlib: crates/datagen/src/lib.rs crates/datagen/src/generator.rs crates/datagen/src/metrics.rs crates/datagen/src/perturb.rs

/root/repo/target/debug/deps/librt_datagen-81add1111df0a6ff.rmeta: crates/datagen/src/lib.rs crates/datagen/src/generator.rs crates/datagen/src/metrics.rs crates/datagen/src/perturb.rs

crates/datagen/src/lib.rs:
crates/datagen/src/generator.rs:
crates/datagen/src/metrics.rs:
crates/datagen/src/perturb.rs:
