/root/repo/target/debug/deps/exp_multi_repairs-94d03f3f067fd190.d: crates/bench/src/bin/exp_multi_repairs.rs Cargo.toml

/root/repo/target/debug/deps/libexp_multi_repairs-94d03f3f067fd190.rmeta: crates/bench/src/bin/exp_multi_repairs.rs Cargo.toml

crates/bench/src/bin/exp_multi_repairs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
