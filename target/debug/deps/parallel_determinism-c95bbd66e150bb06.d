/root/repo/target/debug/deps/parallel_determinism-c95bbd66e150bb06.d: tests/parallel_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_determinism-c95bbd66e150bb06.rmeta: tests/parallel_determinism.rs Cargo.toml

tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
