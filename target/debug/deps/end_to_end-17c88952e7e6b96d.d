/root/repo/target/debug/deps/end_to_end-17c88952e7e6b96d.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-17c88952e7e6b96d: tests/end_to_end.rs

tests/end_to_end.rs:
