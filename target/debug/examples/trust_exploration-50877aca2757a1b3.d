/root/repo/target/debug/examples/trust_exploration-50877aca2757a1b3.d: examples/trust_exploration.rs

/root/repo/target/debug/examples/trust_exploration-50877aca2757a1b3: examples/trust_exploration.rs

examples/trust_exploration.rs:
