/root/repo/target/debug/examples/quickstart-b965c0979bb7dcd5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b965c0979bb7dcd5: examples/quickstart.rs

examples/quickstart.rs:
