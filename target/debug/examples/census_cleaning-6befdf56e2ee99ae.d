/root/repo/target/debug/examples/census_cleaning-6befdf56e2ee99ae.d: examples/census_cleaning.rs

/root/repo/target/debug/examples/census_cleaning-6befdf56e2ee99ae: examples/census_cleaning.rs

examples/census_cleaning.rs:
