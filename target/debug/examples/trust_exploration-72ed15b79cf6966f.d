/root/repo/target/debug/examples/trust_exploration-72ed15b79cf6966f.d: examples/trust_exploration.rs Cargo.toml

/root/repo/target/debug/examples/libtrust_exploration-72ed15b79cf6966f.rmeta: examples/trust_exploration.rs Cargo.toml

examples/trust_exploration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
