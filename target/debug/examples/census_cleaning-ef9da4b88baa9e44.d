/root/repo/target/debug/examples/census_cleaning-ef9da4b88baa9e44.d: examples/census_cleaning.rs Cargo.toml

/root/repo/target/debug/examples/libcensus_cleaning-ef9da4b88baa9e44.rmeta: examples/census_cleaning.rs Cargo.toml

examples/census_cleaning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
