/root/repo/target/debug/librand.rlib: /root/repo/shims/rand/src/lib.rs
