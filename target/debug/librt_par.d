/root/repo/target/debug/librt_par.rlib: /root/repo/crates/par/src/lib.rs
