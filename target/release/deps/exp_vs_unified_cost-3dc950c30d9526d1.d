/root/repo/target/release/deps/exp_vs_unified_cost-3dc950c30d9526d1.d: crates/bench/src/bin/exp_vs_unified_cost.rs

/root/repo/target/release/deps/exp_vs_unified_cost-3dc950c30d9526d1: crates/bench/src/bin/exp_vs_unified_cost.rs

crates/bench/src/bin/exp_vs_unified_cost.rs:
