/root/repo/target/release/deps/criterion-e4dc35a8673dde1f.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-e4dc35a8673dde1f: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
