/root/repo/target/release/deps/bench_fds-0c3bc600a6ce62e7.d: crates/bench/benches/bench_fds.rs

/root/repo/target/release/deps/bench_fds-0c3bc600a6ce62e7: crates/bench/benches/bench_fds.rs

crates/bench/benches/bench_fds.rs:
