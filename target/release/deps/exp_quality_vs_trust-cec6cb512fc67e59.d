/root/repo/target/release/deps/exp_quality_vs_trust-cec6cb512fc67e59.d: crates/bench/src/bin/exp_quality_vs_trust.rs

/root/repo/target/release/deps/exp_quality_vs_trust-cec6cb512fc67e59: crates/bench/src/bin/exp_quality_vs_trust.rs

crates/bench/src/bin/exp_quality_vs_trust.rs:
