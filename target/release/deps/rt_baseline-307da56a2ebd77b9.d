/root/repo/target/release/deps/rt_baseline-307da56a2ebd77b9.d: crates/baseline/src/lib.rs crates/baseline/src/unified.rs

/root/repo/target/release/deps/rt_baseline-307da56a2ebd77b9: crates/baseline/src/lib.rs crates/baseline/src/unified.rs

crates/baseline/src/lib.rs:
crates/baseline/src/unified.rs:
