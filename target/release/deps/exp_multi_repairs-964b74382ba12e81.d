/root/repo/target/release/deps/exp_multi_repairs-964b74382ba12e81.d: crates/bench/src/bin/exp_multi_repairs.rs

/root/repo/target/release/deps/exp_multi_repairs-964b74382ba12e81: crates/bench/src/bin/exp_multi_repairs.rs

crates/bench/src/bin/exp_multi_repairs.rs:
