/root/repo/target/release/deps/rtclean-abd51321cae96d22.d: src/bin/rtclean.rs

/root/repo/target/release/deps/rtclean-abd51321cae96d22: src/bin/rtclean.rs

src/bin/rtclean.rs:
