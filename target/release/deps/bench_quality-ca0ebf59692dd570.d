/root/repo/target/release/deps/bench_quality-ca0ebf59692dd570.d: crates/bench/benches/bench_quality.rs

/root/repo/target/release/deps/bench_quality-ca0ebf59692dd570: crates/bench/benches/bench_quality.rs

crates/bench/benches/bench_quality.rs:
