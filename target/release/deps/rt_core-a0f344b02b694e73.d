/root/repo/target/release/deps/rt_core-a0f344b02b694e73.d: crates/core/src/lib.rs crates/core/src/data_repair.rs crates/core/src/heuristic.rs crates/core/src/multi.rs crates/core/src/problem.rs crates/core/src/repair.rs crates/core/src/search.rs crates/core/src/state.rs

/root/repo/target/release/deps/librt_core-a0f344b02b694e73.rlib: crates/core/src/lib.rs crates/core/src/data_repair.rs crates/core/src/heuristic.rs crates/core/src/multi.rs crates/core/src/problem.rs crates/core/src/repair.rs crates/core/src/search.rs crates/core/src/state.rs

/root/repo/target/release/deps/librt_core-a0f344b02b694e73.rmeta: crates/core/src/lib.rs crates/core/src/data_repair.rs crates/core/src/heuristic.rs crates/core/src/multi.rs crates/core/src/problem.rs crates/core/src/repair.rs crates/core/src/search.rs crates/core/src/state.rs

crates/core/src/lib.rs:
crates/core/src/data_repair.rs:
crates/core/src/heuristic.rs:
crates/core/src/multi.rs:
crates/core/src/problem.rs:
crates/core/src/repair.rs:
crates/core/src/search.rs:
crates/core/src/state.rs:
