/root/repo/target/release/deps/rt_constraints-388aca5d801ae86d.d: crates/constraints/src/lib.rs crates/constraints/src/attrset.rs crates/constraints/src/discovery.rs crates/constraints/src/fd.rs crates/constraints/src/partition.rs crates/constraints/src/violations.rs crates/constraints/src/weights.rs

/root/repo/target/release/deps/librt_constraints-388aca5d801ae86d.rlib: crates/constraints/src/lib.rs crates/constraints/src/attrset.rs crates/constraints/src/discovery.rs crates/constraints/src/fd.rs crates/constraints/src/partition.rs crates/constraints/src/violations.rs crates/constraints/src/weights.rs

/root/repo/target/release/deps/librt_constraints-388aca5d801ae86d.rmeta: crates/constraints/src/lib.rs crates/constraints/src/attrset.rs crates/constraints/src/discovery.rs crates/constraints/src/fd.rs crates/constraints/src/partition.rs crates/constraints/src/violations.rs crates/constraints/src/weights.rs

crates/constraints/src/lib.rs:
crates/constraints/src/attrset.rs:
crates/constraints/src/discovery.rs:
crates/constraints/src/fd.rs:
crates/constraints/src/partition.rs:
crates/constraints/src/violations.rs:
crates/constraints/src/weights.rs:
