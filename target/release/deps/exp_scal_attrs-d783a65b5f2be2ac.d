/root/repo/target/release/deps/exp_scal_attrs-d783a65b5f2be2ac.d: crates/bench/src/bin/exp_scal_attrs.rs

/root/repo/target/release/deps/exp_scal_attrs-d783a65b5f2be2ac: crates/bench/src/bin/exp_scal_attrs.rs

crates/bench/src/bin/exp_scal_attrs.rs:
