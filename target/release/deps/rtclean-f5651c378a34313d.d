/root/repo/target/release/deps/rtclean-f5651c378a34313d.d: src/bin/rtclean.rs

/root/repo/target/release/deps/rtclean-f5651c378a34313d: src/bin/rtclean.rs

src/bin/rtclean.rs:
