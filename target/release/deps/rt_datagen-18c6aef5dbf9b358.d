/root/repo/target/release/deps/rt_datagen-18c6aef5dbf9b358.d: crates/datagen/src/lib.rs crates/datagen/src/generator.rs crates/datagen/src/metrics.rs crates/datagen/src/perturb.rs

/root/repo/target/release/deps/librt_datagen-18c6aef5dbf9b358.rlib: crates/datagen/src/lib.rs crates/datagen/src/generator.rs crates/datagen/src/metrics.rs crates/datagen/src/perturb.rs

/root/repo/target/release/deps/librt_datagen-18c6aef5dbf9b358.rmeta: crates/datagen/src/lib.rs crates/datagen/src/generator.rs crates/datagen/src/metrics.rs crates/datagen/src/perturb.rs

crates/datagen/src/lib.rs:
crates/datagen/src/generator.rs:
crates/datagen/src/metrics.rs:
crates/datagen/src/perturb.rs:
