/root/repo/target/release/deps/rt_bench-689750c5f5c4303f.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/rt_bench-689750c5f5c4303f: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/json.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
