/root/repo/target/release/deps/exp_scal_tuples-b9bcc873a8d7c5ac.d: crates/bench/src/bin/exp_scal_tuples.rs

/root/repo/target/release/deps/exp_scal_tuples-b9bcc873a8d7c5ac: crates/bench/src/bin/exp_scal_tuples.rs

crates/bench/src/bin/exp_scal_tuples.rs:
