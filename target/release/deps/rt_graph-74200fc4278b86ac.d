/root/repo/target/release/deps/rt_graph-74200fc4278b86ac.d: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/vertex_cover.rs

/root/repo/target/release/deps/librt_graph-74200fc4278b86ac.rlib: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/vertex_cover.rs

/root/repo/target/release/deps/librt_graph-74200fc4278b86ac.rmeta: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/vertex_cover.rs

crates/graph/src/lib.rs:
crates/graph/src/graph.rs:
crates/graph/src/vertex_cover.rs:
