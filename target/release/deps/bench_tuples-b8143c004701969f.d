/root/repo/target/release/deps/bench_tuples-b8143c004701969f.d: crates/bench/benches/bench_tuples.rs

/root/repo/target/release/deps/bench_tuples-b8143c004701969f: crates/bench/benches/bench_tuples.rs

crates/bench/benches/bench_tuples.rs:
