/root/repo/target/release/deps/rt_bench-330f7dd7511408e2.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/librt_bench-330f7dd7511408e2.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/librt_bench-330f7dd7511408e2.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/json.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/json.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
