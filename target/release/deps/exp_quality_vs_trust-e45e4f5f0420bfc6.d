/root/repo/target/release/deps/exp_quality_vs_trust-e45e4f5f0420bfc6.d: crates/bench/src/bin/exp_quality_vs_trust.rs

/root/repo/target/release/deps/exp_quality_vs_trust-e45e4f5f0420bfc6: crates/bench/src/bin/exp_quality_vs_trust.rs

crates/bench/src/bin/exp_quality_vs_trust.rs:
