/root/repo/target/release/deps/exp_par_speedup-bb4d766fb1f0be3f.d: crates/bench/src/bin/exp_par_speedup.rs

/root/repo/target/release/deps/exp_par_speedup-bb4d766fb1f0be3f: crates/bench/src/bin/exp_par_speedup.rs

crates/bench/src/bin/exp_par_speedup.rs:
