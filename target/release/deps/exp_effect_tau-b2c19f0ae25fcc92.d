/root/repo/target/release/deps/exp_effect_tau-b2c19f0ae25fcc92.d: crates/bench/src/bin/exp_effect_tau.rs

/root/repo/target/release/deps/exp_effect_tau-b2c19f0ae25fcc92: crates/bench/src/bin/exp_effect_tau.rs

crates/bench/src/bin/exp_effect_tau.rs:
