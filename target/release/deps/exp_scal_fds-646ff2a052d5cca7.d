/root/repo/target/release/deps/exp_scal_fds-646ff2a052d5cca7.d: crates/bench/src/bin/exp_scal_fds.rs

/root/repo/target/release/deps/exp_scal_fds-646ff2a052d5cca7: crates/bench/src/bin/exp_scal_fds.rs

crates/bench/src/bin/exp_scal_fds.rs:
