/root/repo/target/release/deps/rt_par-9f2c1b5f43a60b7b.d: crates/par/src/lib.rs

/root/repo/target/release/deps/rt_par-9f2c1b5f43a60b7b: crates/par/src/lib.rs

crates/par/src/lib.rs:
