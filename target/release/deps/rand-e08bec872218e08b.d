/root/repo/target/release/deps/rand-e08bec872218e08b.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-e08bec872218e08b.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-e08bec872218e08b.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
