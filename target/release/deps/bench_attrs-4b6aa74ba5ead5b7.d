/root/repo/target/release/deps/bench_attrs-4b6aa74ba5ead5b7.d: crates/bench/benches/bench_attrs.rs

/root/repo/target/release/deps/bench_attrs-4b6aa74ba5ead5b7: crates/bench/benches/bench_attrs.rs

crates/bench/benches/bench_attrs.rs:
