/root/repo/target/release/deps/rt_datagen-8b66db272f03afe3.d: crates/datagen/src/lib.rs crates/datagen/src/generator.rs crates/datagen/src/metrics.rs crates/datagen/src/perturb.rs

/root/repo/target/release/deps/rt_datagen-8b66db272f03afe3: crates/datagen/src/lib.rs crates/datagen/src/generator.rs crates/datagen/src/metrics.rs crates/datagen/src/perturb.rs

crates/datagen/src/lib.rs:
crates/datagen/src/generator.rs:
crates/datagen/src/metrics.rs:
crates/datagen/src/perturb.rs:
