/root/repo/target/release/deps/bench_tau-8e6324e22eff8d2f.d: crates/bench/benches/bench_tau.rs

/root/repo/target/release/deps/bench_tau-8e6324e22eff8d2f: crates/bench/benches/bench_tau.rs

crates/bench/benches/bench_tau.rs:
