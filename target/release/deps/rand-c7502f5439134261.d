/root/repo/target/release/deps/rand-c7502f5439134261.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/rand-c7502f5439134261: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
