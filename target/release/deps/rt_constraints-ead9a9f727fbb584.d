/root/repo/target/release/deps/rt_constraints-ead9a9f727fbb584.d: crates/constraints/src/lib.rs crates/constraints/src/attrset.rs crates/constraints/src/discovery.rs crates/constraints/src/fd.rs crates/constraints/src/partition.rs crates/constraints/src/violations.rs crates/constraints/src/weights.rs

/root/repo/target/release/deps/rt_constraints-ead9a9f727fbb584: crates/constraints/src/lib.rs crates/constraints/src/attrset.rs crates/constraints/src/discovery.rs crates/constraints/src/fd.rs crates/constraints/src/partition.rs crates/constraints/src/violations.rs crates/constraints/src/weights.rs

crates/constraints/src/lib.rs:
crates/constraints/src/attrset.rs:
crates/constraints/src/discovery.rs:
crates/constraints/src/fd.rs:
crates/constraints/src/partition.rs:
crates/constraints/src/violations.rs:
crates/constraints/src/weights.rs:
