/root/repo/target/release/deps/exp_scal_tuples-15f5aa823c615bbc.d: crates/bench/src/bin/exp_scal_tuples.rs

/root/repo/target/release/deps/exp_scal_tuples-15f5aa823c615bbc: crates/bench/src/bin/exp_scal_tuples.rs

crates/bench/src/bin/exp_scal_tuples.rs:
