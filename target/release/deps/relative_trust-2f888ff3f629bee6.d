/root/repo/target/release/deps/relative_trust-2f888ff3f629bee6.d: src/lib.rs

/root/repo/target/release/deps/relative_trust-2f888ff3f629bee6: src/lib.rs

src/lib.rs:
