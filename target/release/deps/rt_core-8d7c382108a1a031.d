/root/repo/target/release/deps/rt_core-8d7c382108a1a031.d: crates/core/src/lib.rs crates/core/src/data_repair.rs crates/core/src/heuristic.rs crates/core/src/multi.rs crates/core/src/problem.rs crates/core/src/repair.rs crates/core/src/search.rs crates/core/src/state.rs

/root/repo/target/release/deps/rt_core-8d7c382108a1a031: crates/core/src/lib.rs crates/core/src/data_repair.rs crates/core/src/heuristic.rs crates/core/src/multi.rs crates/core/src/problem.rs crates/core/src/repair.rs crates/core/src/search.rs crates/core/src/state.rs

crates/core/src/lib.rs:
crates/core/src/data_repair.rs:
crates/core/src/heuristic.rs:
crates/core/src/multi.rs:
crates/core/src/problem.rs:
crates/core/src/repair.rs:
crates/core/src/search.rs:
crates/core/src/state.rs:
