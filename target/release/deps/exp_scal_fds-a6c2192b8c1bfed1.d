/root/repo/target/release/deps/exp_scal_fds-a6c2192b8c1bfed1.d: crates/bench/src/bin/exp_scal_fds.rs

/root/repo/target/release/deps/exp_scal_fds-a6c2192b8c1bfed1: crates/bench/src/bin/exp_scal_fds.rs

crates/bench/src/bin/exp_scal_fds.rs:
