/root/repo/target/release/deps/rt_relation-9f5d0907c5c57331.d: crates/relation/src/lib.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/instance.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

/root/repo/target/release/deps/librt_relation-9f5d0907c5c57331.rlib: crates/relation/src/lib.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/instance.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

/root/repo/target/release/deps/librt_relation-9f5d0907c5c57331.rmeta: crates/relation/src/lib.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/instance.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

crates/relation/src/lib.rs:
crates/relation/src/csv.rs:
crates/relation/src/error.rs:
crates/relation/src/instance.rs:
crates/relation/src/schema.rs:
crates/relation/src/tuple.rs:
crates/relation/src/value.rs:
