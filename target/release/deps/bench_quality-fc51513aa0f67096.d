/root/repo/target/release/deps/bench_quality-fc51513aa0f67096.d: crates/bench/benches/bench_quality.rs

/root/repo/target/release/deps/bench_quality-fc51513aa0f67096: crates/bench/benches/bench_quality.rs

crates/bench/benches/bench_quality.rs:
