/root/repo/target/release/deps/rt_graph-5ebcd8c38a407271.d: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/vertex_cover.rs

/root/repo/target/release/deps/rt_graph-5ebcd8c38a407271: crates/graph/src/lib.rs crates/graph/src/graph.rs crates/graph/src/vertex_cover.rs

crates/graph/src/lib.rs:
crates/graph/src/graph.rs:
crates/graph/src/vertex_cover.rs:
