/root/repo/target/release/deps/bench_multi-e3776784f0192a4f.d: crates/bench/benches/bench_multi.rs

/root/repo/target/release/deps/bench_multi-e3776784f0192a4f: crates/bench/benches/bench_multi.rs

crates/bench/benches/bench_multi.rs:
