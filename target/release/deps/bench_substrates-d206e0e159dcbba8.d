/root/repo/target/release/deps/bench_substrates-d206e0e159dcbba8.d: crates/bench/benches/bench_substrates.rs

/root/repo/target/release/deps/bench_substrates-d206e0e159dcbba8: crates/bench/benches/bench_substrates.rs

crates/bench/benches/bench_substrates.rs:
