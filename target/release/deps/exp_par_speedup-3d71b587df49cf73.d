/root/repo/target/release/deps/exp_par_speedup-3d71b587df49cf73.d: crates/bench/src/bin/exp_par_speedup.rs

/root/repo/target/release/deps/exp_par_speedup-3d71b587df49cf73: crates/bench/src/bin/exp_par_speedup.rs

crates/bench/src/bin/exp_par_speedup.rs:
