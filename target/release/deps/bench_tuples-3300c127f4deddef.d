/root/repo/target/release/deps/bench_tuples-3300c127f4deddef.d: crates/bench/benches/bench_tuples.rs

/root/repo/target/release/deps/bench_tuples-3300c127f4deddef: crates/bench/benches/bench_tuples.rs

crates/bench/benches/bench_tuples.rs:
