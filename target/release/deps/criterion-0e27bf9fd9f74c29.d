/root/repo/target/release/deps/criterion-0e27bf9fd9f74c29.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-0e27bf9fd9f74c29.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-0e27bf9fd9f74c29.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
