/root/repo/target/release/deps/rt_par-091103396a8661da.d: crates/par/src/lib.rs

/root/repo/target/release/deps/librt_par-091103396a8661da.rlib: crates/par/src/lib.rs

/root/repo/target/release/deps/librt_par-091103396a8661da.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
