/root/repo/target/release/deps/exp_multi_repairs-22bee0c17e32cf0a.d: crates/bench/src/bin/exp_multi_repairs.rs

/root/repo/target/release/deps/exp_multi_repairs-22bee0c17e32cf0a: crates/bench/src/bin/exp_multi_repairs.rs

crates/bench/src/bin/exp_multi_repairs.rs:
