/root/repo/target/release/deps/rt_baseline-420df733e37d353d.d: crates/baseline/src/lib.rs crates/baseline/src/unified.rs

/root/repo/target/release/deps/librt_baseline-420df733e37d353d.rlib: crates/baseline/src/lib.rs crates/baseline/src/unified.rs

/root/repo/target/release/deps/librt_baseline-420df733e37d353d.rmeta: crates/baseline/src/lib.rs crates/baseline/src/unified.rs

crates/baseline/src/lib.rs:
crates/baseline/src/unified.rs:
