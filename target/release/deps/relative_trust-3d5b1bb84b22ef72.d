/root/repo/target/release/deps/relative_trust-3d5b1bb84b22ef72.d: src/lib.rs

/root/repo/target/release/deps/librelative_trust-3d5b1bb84b22ef72.rlib: src/lib.rs

/root/repo/target/release/deps/librelative_trust-3d5b1bb84b22ef72.rmeta: src/lib.rs

src/lib.rs:
