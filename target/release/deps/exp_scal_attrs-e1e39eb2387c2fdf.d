/root/repo/target/release/deps/exp_scal_attrs-e1e39eb2387c2fdf.d: crates/bench/src/bin/exp_scal_attrs.rs

/root/repo/target/release/deps/exp_scal_attrs-e1e39eb2387c2fdf: crates/bench/src/bin/exp_scal_attrs.rs

crates/bench/src/bin/exp_scal_attrs.rs:
