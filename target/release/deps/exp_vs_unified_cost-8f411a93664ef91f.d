/root/repo/target/release/deps/exp_vs_unified_cost-8f411a93664ef91f.d: crates/bench/src/bin/exp_vs_unified_cost.rs

/root/repo/target/release/deps/exp_vs_unified_cost-8f411a93664ef91f: crates/bench/src/bin/exp_vs_unified_cost.rs

crates/bench/src/bin/exp_vs_unified_cost.rs:
