/root/repo/target/release/deps/bench_tau-eae5aa5ab84eacfa.d: crates/bench/benches/bench_tau.rs

/root/repo/target/release/deps/bench_tau-eae5aa5ab84eacfa: crates/bench/benches/bench_tau.rs

crates/bench/benches/bench_tau.rs:
