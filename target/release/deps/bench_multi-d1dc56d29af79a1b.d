/root/repo/target/release/deps/bench_multi-d1dc56d29af79a1b.d: crates/bench/benches/bench_multi.rs

/root/repo/target/release/deps/bench_multi-d1dc56d29af79a1b: crates/bench/benches/bench_multi.rs

crates/bench/benches/bench_multi.rs:
