/root/repo/target/release/deps/bench_attrs-12ba014ce955b08a.d: crates/bench/benches/bench_attrs.rs

/root/repo/target/release/deps/bench_attrs-12ba014ce955b08a: crates/bench/benches/bench_attrs.rs

crates/bench/benches/bench_attrs.rs:
