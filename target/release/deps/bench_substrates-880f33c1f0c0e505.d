/root/repo/target/release/deps/bench_substrates-880f33c1f0c0e505.d: crates/bench/benches/bench_substrates.rs

/root/repo/target/release/deps/bench_substrates-880f33c1f0c0e505: crates/bench/benches/bench_substrates.rs

crates/bench/benches/bench_substrates.rs:
