/root/repo/target/release/deps/rt_relation-bd9882a642eea8f5.d: crates/relation/src/lib.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/instance.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

/root/repo/target/release/deps/rt_relation-bd9882a642eea8f5: crates/relation/src/lib.rs crates/relation/src/csv.rs crates/relation/src/error.rs crates/relation/src/instance.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

crates/relation/src/lib.rs:
crates/relation/src/csv.rs:
crates/relation/src/error.rs:
crates/relation/src/instance.rs:
crates/relation/src/schema.rs:
crates/relation/src/tuple.rs:
crates/relation/src/value.rs:
