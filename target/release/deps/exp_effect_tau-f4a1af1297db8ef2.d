/root/repo/target/release/deps/exp_effect_tau-f4a1af1297db8ef2.d: crates/bench/src/bin/exp_effect_tau.rs

/root/repo/target/release/deps/exp_effect_tau-f4a1af1297db8ef2: crates/bench/src/bin/exp_effect_tau.rs

crates/bench/src/bin/exp_effect_tau.rs:
