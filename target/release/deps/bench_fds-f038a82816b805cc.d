/root/repo/target/release/deps/bench_fds-f038a82816b805cc.d: crates/bench/benches/bench_fds.rs

/root/repo/target/release/deps/bench_fds-f038a82816b805cc: crates/bench/benches/bench_fds.rs

crates/bench/benches/bench_fds.rs:
