/root/repo/target/release/librt_par.rlib: /root/repo/crates/par/src/lib.rs
