/root/repo/target/release/librt_graph.rlib: /root/repo/crates/graph/src/graph.rs /root/repo/crates/graph/src/lib.rs /root/repo/crates/graph/src/vertex_cover.rs /root/repo/crates/par/src/lib.rs
