/root/repo/target/release/examples/quickstart-b4e147684465db39.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-b4e147684465db39: examples/quickstart.rs

examples/quickstart.rs:
