/root/repo/target/release/librand.rlib: /root/repo/shims/rand/src/lib.rs
