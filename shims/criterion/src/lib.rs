//! # criterion (offline shim)
//!
//! A dependency-free stand-in for the slice of the `criterion` API the
//! workspace's benches use (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, the `criterion_group!` /
//! `criterion_main!` macros and `Bencher::iter`).
//!
//! The build environment has no access to crates.io, so the real harness
//! cannot be vendored. This shim measures mean / min / max wall-clock time
//! over `sample_size` samples and prints one line per benchmark. It performs
//! no statistical analysis, outlier rejection, or HTML reporting — good
//! enough to compare implementations on the same machine in the same run,
//! which is all the workspace's benches are used for.
//!
//! Filtering works like criterion's: `cargo bench -- <substring>` runs only
//! benchmarks whose `group/id` name contains the substring.
//!
//! ```
//! use criterion::{black_box, BenchmarkId};
//!
//! // `black_box` defeats constant folding exactly like the real crate.
//! assert_eq!(black_box(2 + 2), 4);
//! assert_eq!(BenchmarkId::new("encode", 128).to_string(), "encode/128");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterized benchmark (`"name/parameter"`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine` `sample_size` times (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std_black_box(routine()); // warm-up
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim's cost model is
    /// samples × routine time, so the target measurement time is ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim warms up with a single
    /// untimed call instead of a timed warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&full, &bencher.samples);
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{name:<60} mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
        mean,
        min,
        max,
        samples.len()
    );
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads a benchmark name filter from the command line
    /// (`cargo bench -- <substring>`), skipping harness flags.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Starts a named benchmark group with default settings
    /// (10 samples per benchmark).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Declares a benchmark group function calling each target with a
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_renders_name_and_parameter() {
        assert_eq!(BenchmarkId::new("build", 500).to_string(), "build/500");
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            filter: Some("other".to_string()),
        };
        let mut group = c.benchmark_group("shim_test");
        let mut runs = 0usize;
        group.bench_function("counting", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
    }
}
