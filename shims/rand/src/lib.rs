//! # rand (offline shim)
//!
//! A dependency-free stand-in for the tiny slice of the `rand` crate this
//! workspace actually uses: [`rngs::StdRng`] seeded with
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over primitive ranges,
//! and [`seq::SliceRandom`]'s `shuffle` / `choose`.
//!
//! The build environment has no access to crates.io, so the real `rand`
//! cannot be vendored. This shim keeps the call sites source-compatible. The
//! generator is SplitMix64 — statistically fine for workload synthesis and
//! randomized repair orderings, *not* cryptographic. Streams differ from the
//! real `StdRng` (ChaCha12), so seeds produce different (but still fully
//! deterministic and reproducible) sequences.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let a: i64 = rng.gen_range(0..100);
//! assert!((0..100).contains(&a));
//! // Same seed, same stream: fully reproducible.
//! let mut again = StdRng::seed_from_u64(7);
//! assert_eq!(again.gen_range(0..100), a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Draws a value in `[range.start, range.end)` from `rng`.
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

/// Object-safe source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Subset of `rand::Rng` used by this workspace.
pub trait Rng: RngCore + Sized {
    /// Uniform draw from a half-open range (`low..high`, `high` exclusive).
    ///
    /// Panics when the range is empty, matching `rand`'s behaviour.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Subset of `rand::SeedableRng` used by this workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        // 53 high bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// Pseudo-random generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the seed (Murmur3-style finalizer) so that related
            // seeds — s, s ^ c, s + k·gamma — yield unrelated streams. The
            // raw seed must NOT be used as the state directly: SplitMix64
            // advances by a fixed gamma per draw, so seeds differing by
            // multiples of the gamma would produce shifted copies of one
            // stream. Real `rand` hashes seeds for the same reason.
            let mut z = seed.wrapping_add(0xA076_1D64_78BD_642F);
            z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
            StdRng {
                state: z ^ (z >> 33),
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Subset of `rand::seq::SliceRandom` used by this workspace.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20i64);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes_and_choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle is virtually never the identity"
        );
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn related_seeds_produce_unrelated_streams() {
        // Seeds differing by multiples of the SplitMix64 gamma must not
        // yield shifted copies of the same stream (this is exactly how
        // per-unit seeds are derived in rt-core's data repair).
        const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(0);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(GAMMA);
            (0..32).map(|_| r.next_u64()).collect()
        };
        // `b` must not be `a` shifted by one draw.
        assert_ne!(&a[1..], &b[..31]);
        assert_ne!(a, b);
    }

    #[test]
    fn values_spread_across_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
